# Empty dependencies file for bench_paper_artifacts.
# This may be replaced when dependencies are built.
