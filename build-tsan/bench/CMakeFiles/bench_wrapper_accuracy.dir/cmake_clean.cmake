file(REMOVE_RECURSE
  "CMakeFiles/bench_wrapper_accuracy.dir/bench_wrapper_accuracy.cpp.o"
  "CMakeFiles/bench_wrapper_accuracy.dir/bench_wrapper_accuracy.cpp.o.d"
  "bench_wrapper_accuracy"
  "bench_wrapper_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wrapper_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
