# Empty compiler generated dependencies file for bench_wrapper_accuracy.
# This may be replaced when dependencies are built.
