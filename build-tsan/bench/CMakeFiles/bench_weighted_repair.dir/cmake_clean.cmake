file(REMOVE_RECURSE
  "CMakeFiles/bench_weighted_repair.dir/bench_weighted_repair.cpp.o"
  "CMakeFiles/bench_weighted_repair.dir/bench_weighted_repair.cpp.o.d"
  "bench_weighted_repair"
  "bench_weighted_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weighted_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
