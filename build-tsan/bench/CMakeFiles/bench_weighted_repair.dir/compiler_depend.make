# Empty compiler generated dependencies file for bench_weighted_repair.
# This may be replaced when dependencies are built.
