file(REMOVE_RECURSE
  "CMakeFiles/bench_repair_scaling.dir/bench_repair_scaling.cpp.o"
  "CMakeFiles/bench_repair_scaling.dir/bench_repair_scaling.cpp.o.d"
  "bench_repair_scaling"
  "bench_repair_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repair_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
