# Empty compiler generated dependencies file for bench_repair_scaling.
# This may be replaced when dependencies are built.
