
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tnorm_ablation.cpp" "bench/CMakeFiles/bench_tnorm_ablation.dir/bench_tnorm_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_tnorm_ablation.dir/bench_tnorm_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ocr/CMakeFiles/dart_ocr.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/dart_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dbgen/CMakeFiles/dart_dbgen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/validation/CMakeFiles/dart_validation.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/repair/CMakeFiles/dart_repair.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/constraints/CMakeFiles/dart_constraints.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/relational/CMakeFiles/dart_relational.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/milp/CMakeFiles/dart_milp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/acquire/CMakeFiles/dart_acquire.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wrapper/CMakeFiles/dart_wrapper.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/textrepair/CMakeFiles/dart_textrepair.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
