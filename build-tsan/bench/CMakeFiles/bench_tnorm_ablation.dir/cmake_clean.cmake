file(REMOVE_RECURSE
  "CMakeFiles/bench_tnorm_ablation.dir/bench_tnorm_ablation.cpp.o"
  "CMakeFiles/bench_tnorm_ablation.dir/bench_tnorm_ablation.cpp.o.d"
  "bench_tnorm_ablation"
  "bench_tnorm_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tnorm_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
