# Empty compiler generated dependencies file for bench_hierarchy_depth.
# This may be replaced when dependencies are built.
