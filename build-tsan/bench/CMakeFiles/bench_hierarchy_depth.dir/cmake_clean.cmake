file(REMOVE_RECURSE
  "CMakeFiles/bench_hierarchy_depth.dir/bench_hierarchy_depth.cpp.o"
  "CMakeFiles/bench_hierarchy_depth.dir/bench_hierarchy_depth.cpp.o.d"
  "bench_hierarchy_depth"
  "bench_hierarchy_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hierarchy_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
