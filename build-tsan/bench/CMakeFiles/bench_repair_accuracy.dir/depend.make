# Empty dependencies file for bench_repair_accuracy.
# This may be replaced when dependencies are built.
