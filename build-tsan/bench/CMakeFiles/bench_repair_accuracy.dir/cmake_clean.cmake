file(REMOVE_RECURSE
  "CMakeFiles/bench_repair_accuracy.dir/bench_repair_accuracy.cpp.o"
  "CMakeFiles/bench_repair_accuracy.dir/bench_repair_accuracy.cpp.o.d"
  "bench_repair_accuracy"
  "bench_repair_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repair_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
