file(REMOVE_RECURSE
  "CMakeFiles/bench_bigm_ablation.dir/bench_bigm_ablation.cpp.o"
  "CMakeFiles/bench_bigm_ablation.dir/bench_bigm_ablation.cpp.o.d"
  "bench_bigm_ablation"
  "bench_bigm_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bigm_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
