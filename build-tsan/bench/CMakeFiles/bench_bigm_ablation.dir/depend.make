# Empty dependencies file for bench_bigm_ablation.
# This may be replaced when dependencies are built.
