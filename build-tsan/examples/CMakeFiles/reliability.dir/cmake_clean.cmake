file(REMOVE_RECURSE
  "CMakeFiles/reliability.dir/reliability.cpp.o"
  "CMakeFiles/reliability.dir/reliability.cpp.o.d"
  "reliability"
  "reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
