# Empty dependencies file for reliability.
# This may be replaced when dependencies are built.
