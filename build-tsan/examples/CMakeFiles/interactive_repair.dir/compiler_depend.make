# Empty compiler generated dependencies file for interactive_repair.
# This may be replaced when dependencies are built.
