file(REMOVE_RECURSE
  "CMakeFiles/interactive_repair.dir/interactive_repair.cpp.o"
  "CMakeFiles/interactive_repair.dir/interactive_repair.cpp.o.d"
  "interactive_repair"
  "interactive_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
