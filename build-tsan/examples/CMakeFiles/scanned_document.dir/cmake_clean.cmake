file(REMOVE_RECURSE
  "CMakeFiles/scanned_document.dir/scanned_document.cpp.o"
  "CMakeFiles/scanned_document.dir/scanned_document.cpp.o.d"
  "scanned_document"
  "scanned_document.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanned_document.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
