# Empty dependencies file for scanned_document.
# This may be replaced when dependencies are built.
