# Empty dependencies file for balance_sheets.
# This may be replaced when dependencies are built.
