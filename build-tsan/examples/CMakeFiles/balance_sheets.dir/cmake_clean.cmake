file(REMOVE_RECURSE
  "CMakeFiles/balance_sheets.dir/balance_sheets.cpp.o"
  "CMakeFiles/balance_sheets.dir/balance_sheets.cpp.o.d"
  "balance_sheets"
  "balance_sheets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_sheets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
