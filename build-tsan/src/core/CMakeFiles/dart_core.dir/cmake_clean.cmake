file(REMOVE_RECURSE
  "CMakeFiles/dart_core.dir/metadata_io.cpp.o"
  "CMakeFiles/dart_core.dir/metadata_io.cpp.o.d"
  "CMakeFiles/dart_core.dir/pipeline.cpp.o"
  "CMakeFiles/dart_core.dir/pipeline.cpp.o.d"
  "libdart_core.a"
  "libdart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
