# Empty compiler generated dependencies file for dart_wrapper.
# This may be replaced when dependencies are built.
