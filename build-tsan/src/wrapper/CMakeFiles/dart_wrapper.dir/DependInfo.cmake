
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wrapper/domains.cpp" "src/wrapper/CMakeFiles/dart_wrapper.dir/domains.cpp.o" "gcc" "src/wrapper/CMakeFiles/dart_wrapper.dir/domains.cpp.o.d"
  "/root/repo/src/wrapper/html_parser.cpp" "src/wrapper/CMakeFiles/dart_wrapper.dir/html_parser.cpp.o" "gcc" "src/wrapper/CMakeFiles/dart_wrapper.dir/html_parser.cpp.o.d"
  "/root/repo/src/wrapper/matcher.cpp" "src/wrapper/CMakeFiles/dart_wrapper.dir/matcher.cpp.o" "gcc" "src/wrapper/CMakeFiles/dart_wrapper.dir/matcher.cpp.o.d"
  "/root/repo/src/wrapper/row_pattern.cpp" "src/wrapper/CMakeFiles/dart_wrapper.dir/row_pattern.cpp.o" "gcc" "src/wrapper/CMakeFiles/dart_wrapper.dir/row_pattern.cpp.o.d"
  "/root/repo/src/wrapper/table_grid.cpp" "src/wrapper/CMakeFiles/dart_wrapper.dir/table_grid.cpp.o" "gcc" "src/wrapper/CMakeFiles/dart_wrapper.dir/table_grid.cpp.o.d"
  "/root/repo/src/wrapper/wrapper.cpp" "src/wrapper/CMakeFiles/dart_wrapper.dir/wrapper.cpp.o" "gcc" "src/wrapper/CMakeFiles/dart_wrapper.dir/wrapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/textrepair/CMakeFiles/dart_textrepair.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
