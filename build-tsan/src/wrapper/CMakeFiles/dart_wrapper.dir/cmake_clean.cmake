file(REMOVE_RECURSE
  "CMakeFiles/dart_wrapper.dir/domains.cpp.o"
  "CMakeFiles/dart_wrapper.dir/domains.cpp.o.d"
  "CMakeFiles/dart_wrapper.dir/html_parser.cpp.o"
  "CMakeFiles/dart_wrapper.dir/html_parser.cpp.o.d"
  "CMakeFiles/dart_wrapper.dir/matcher.cpp.o"
  "CMakeFiles/dart_wrapper.dir/matcher.cpp.o.d"
  "CMakeFiles/dart_wrapper.dir/row_pattern.cpp.o"
  "CMakeFiles/dart_wrapper.dir/row_pattern.cpp.o.d"
  "CMakeFiles/dart_wrapper.dir/table_grid.cpp.o"
  "CMakeFiles/dart_wrapper.dir/table_grid.cpp.o.d"
  "CMakeFiles/dart_wrapper.dir/wrapper.cpp.o"
  "CMakeFiles/dart_wrapper.dir/wrapper.cpp.o.d"
  "libdart_wrapper.a"
  "libdart_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
