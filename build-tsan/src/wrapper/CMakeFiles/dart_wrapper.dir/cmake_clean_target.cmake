file(REMOVE_RECURSE
  "libdart_wrapper.a"
)
