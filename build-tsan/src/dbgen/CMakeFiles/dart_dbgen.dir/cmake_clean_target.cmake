file(REMOVE_RECURSE
  "libdart_dbgen.a"
)
