# Empty compiler generated dependencies file for dart_dbgen.
# This may be replaced when dependencies are built.
