file(REMOVE_RECURSE
  "CMakeFiles/dart_dbgen.dir/generator.cpp.o"
  "CMakeFiles/dart_dbgen.dir/generator.cpp.o.d"
  "CMakeFiles/dart_dbgen.dir/metadata.cpp.o"
  "CMakeFiles/dart_dbgen.dir/metadata.cpp.o.d"
  "libdart_dbgen.a"
  "libdart_dbgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_dbgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
