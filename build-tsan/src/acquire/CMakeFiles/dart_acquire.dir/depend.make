# Empty dependencies file for dart_acquire.
# This may be replaced when dependencies are built.
