file(REMOVE_RECURSE
  "libdart_acquire.a"
)
