file(REMOVE_RECURSE
  "CMakeFiles/dart_acquire.dir/layout.cpp.o"
  "CMakeFiles/dart_acquire.dir/layout.cpp.o.d"
  "CMakeFiles/dart_acquire.dir/positional.cpp.o"
  "CMakeFiles/dart_acquire.dir/positional.cpp.o.d"
  "libdart_acquire.a"
  "libdart_acquire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_acquire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
