# Empty dependencies file for dart_util.
# This may be replaced when dependencies are built.
