file(REMOVE_RECURSE
  "CMakeFiles/dart_util.dir/random.cpp.o"
  "CMakeFiles/dart_util.dir/random.cpp.o.d"
  "CMakeFiles/dart_util.dir/status.cpp.o"
  "CMakeFiles/dart_util.dir/status.cpp.o.d"
  "CMakeFiles/dart_util.dir/strings.cpp.o"
  "CMakeFiles/dart_util.dir/strings.cpp.o.d"
  "CMakeFiles/dart_util.dir/table_printer.cpp.o"
  "CMakeFiles/dart_util.dir/table_printer.cpp.o.d"
  "libdart_util.a"
  "libdart_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
