
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/random.cpp" "src/util/CMakeFiles/dart_util.dir/random.cpp.o" "gcc" "src/util/CMakeFiles/dart_util.dir/random.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/util/CMakeFiles/dart_util.dir/status.cpp.o" "gcc" "src/util/CMakeFiles/dart_util.dir/status.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/dart_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/dart_util.dir/strings.cpp.o.d"
  "/root/repo/src/util/table_printer.cpp" "src/util/CMakeFiles/dart_util.dir/table_printer.cpp.o" "gcc" "src/util/CMakeFiles/dart_util.dir/table_printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
