file(REMOVE_RECURSE
  "libdart_util.a"
)
