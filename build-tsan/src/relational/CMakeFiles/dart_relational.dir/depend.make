# Empty dependencies file for dart_relational.
# This may be replaced when dependencies are built.
