file(REMOVE_RECURSE
  "libdart_relational.a"
)
