file(REMOVE_RECURSE
  "CMakeFiles/dart_relational.dir/csv.cpp.o"
  "CMakeFiles/dart_relational.dir/csv.cpp.o.d"
  "CMakeFiles/dart_relational.dir/database.cpp.o"
  "CMakeFiles/dart_relational.dir/database.cpp.o.d"
  "CMakeFiles/dart_relational.dir/relation.cpp.o"
  "CMakeFiles/dart_relational.dir/relation.cpp.o.d"
  "CMakeFiles/dart_relational.dir/schema.cpp.o"
  "CMakeFiles/dart_relational.dir/schema.cpp.o.d"
  "CMakeFiles/dart_relational.dir/value.cpp.o"
  "CMakeFiles/dart_relational.dir/value.cpp.o.d"
  "libdart_relational.a"
  "libdart_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
