
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/csv.cpp" "src/relational/CMakeFiles/dart_relational.dir/csv.cpp.o" "gcc" "src/relational/CMakeFiles/dart_relational.dir/csv.cpp.o.d"
  "/root/repo/src/relational/database.cpp" "src/relational/CMakeFiles/dart_relational.dir/database.cpp.o" "gcc" "src/relational/CMakeFiles/dart_relational.dir/database.cpp.o.d"
  "/root/repo/src/relational/relation.cpp" "src/relational/CMakeFiles/dart_relational.dir/relation.cpp.o" "gcc" "src/relational/CMakeFiles/dart_relational.dir/relation.cpp.o.d"
  "/root/repo/src/relational/schema.cpp" "src/relational/CMakeFiles/dart_relational.dir/schema.cpp.o" "gcc" "src/relational/CMakeFiles/dart_relational.dir/schema.cpp.o.d"
  "/root/repo/src/relational/value.cpp" "src/relational/CMakeFiles/dart_relational.dir/value.cpp.o" "gcc" "src/relational/CMakeFiles/dart_relational.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/dart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
