
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/ast.cpp" "src/constraints/CMakeFiles/dart_constraints.dir/ast.cpp.o" "gcc" "src/constraints/CMakeFiles/dart_constraints.dir/ast.cpp.o.d"
  "/root/repo/src/constraints/eval.cpp" "src/constraints/CMakeFiles/dart_constraints.dir/eval.cpp.o" "gcc" "src/constraints/CMakeFiles/dart_constraints.dir/eval.cpp.o.d"
  "/root/repo/src/constraints/parser.cpp" "src/constraints/CMakeFiles/dart_constraints.dir/parser.cpp.o" "gcc" "src/constraints/CMakeFiles/dart_constraints.dir/parser.cpp.o.d"
  "/root/repo/src/constraints/steady.cpp" "src/constraints/CMakeFiles/dart_constraints.dir/steady.cpp.o" "gcc" "src/constraints/CMakeFiles/dart_constraints.dir/steady.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/relational/CMakeFiles/dart_relational.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
