file(REMOVE_RECURSE
  "libdart_constraints.a"
)
