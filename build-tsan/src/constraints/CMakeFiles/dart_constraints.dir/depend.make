# Empty dependencies file for dart_constraints.
# This may be replaced when dependencies are built.
