file(REMOVE_RECURSE
  "CMakeFiles/dart_constraints.dir/ast.cpp.o"
  "CMakeFiles/dart_constraints.dir/ast.cpp.o.d"
  "CMakeFiles/dart_constraints.dir/eval.cpp.o"
  "CMakeFiles/dart_constraints.dir/eval.cpp.o.d"
  "CMakeFiles/dart_constraints.dir/parser.cpp.o"
  "CMakeFiles/dart_constraints.dir/parser.cpp.o.d"
  "CMakeFiles/dart_constraints.dir/steady.cpp.o"
  "CMakeFiles/dart_constraints.dir/steady.cpp.o.d"
  "libdart_constraints.a"
  "libdart_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
