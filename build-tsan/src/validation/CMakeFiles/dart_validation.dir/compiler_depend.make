# Empty compiler generated dependencies file for dart_validation.
# This may be replaced when dependencies are built.
