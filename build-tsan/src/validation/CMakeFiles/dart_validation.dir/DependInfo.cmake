
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/validation/display.cpp" "src/validation/CMakeFiles/dart_validation.dir/display.cpp.o" "gcc" "src/validation/CMakeFiles/dart_validation.dir/display.cpp.o.d"
  "/root/repo/src/validation/operator.cpp" "src/validation/CMakeFiles/dart_validation.dir/operator.cpp.o" "gcc" "src/validation/CMakeFiles/dart_validation.dir/operator.cpp.o.d"
  "/root/repo/src/validation/session.cpp" "src/validation/CMakeFiles/dart_validation.dir/session.cpp.o" "gcc" "src/validation/CMakeFiles/dart_validation.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/repair/CMakeFiles/dart_repair.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/relational/CMakeFiles/dart_relational.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dart_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/constraints/CMakeFiles/dart_constraints.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/milp/CMakeFiles/dart_milp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
