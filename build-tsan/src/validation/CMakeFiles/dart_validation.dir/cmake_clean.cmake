file(REMOVE_RECURSE
  "CMakeFiles/dart_validation.dir/display.cpp.o"
  "CMakeFiles/dart_validation.dir/display.cpp.o.d"
  "CMakeFiles/dart_validation.dir/operator.cpp.o"
  "CMakeFiles/dart_validation.dir/operator.cpp.o.d"
  "CMakeFiles/dart_validation.dir/session.cpp.o"
  "CMakeFiles/dart_validation.dir/session.cpp.o.d"
  "libdart_validation.a"
  "libdart_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
