file(REMOVE_RECURSE
  "libdart_validation.a"
)
