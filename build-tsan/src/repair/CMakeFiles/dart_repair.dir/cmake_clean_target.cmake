file(REMOVE_RECURSE
  "libdart_repair.a"
)
