file(REMOVE_RECURSE
  "CMakeFiles/dart_repair.dir/cqa.cpp.o"
  "CMakeFiles/dart_repair.dir/cqa.cpp.o.d"
  "CMakeFiles/dart_repair.dir/engine.cpp.o"
  "CMakeFiles/dart_repair.dir/engine.cpp.o.d"
  "CMakeFiles/dart_repair.dir/repair.cpp.o"
  "CMakeFiles/dart_repair.dir/repair.cpp.o.d"
  "CMakeFiles/dart_repair.dir/translator.cpp.o"
  "CMakeFiles/dart_repair.dir/translator.cpp.o.d"
  "libdart_repair.a"
  "libdart_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
