# Empty compiler generated dependencies file for dart_repair.
# This may be replaced when dependencies are built.
