
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repair/cqa.cpp" "src/repair/CMakeFiles/dart_repair.dir/cqa.cpp.o" "gcc" "src/repair/CMakeFiles/dart_repair.dir/cqa.cpp.o.d"
  "/root/repo/src/repair/engine.cpp" "src/repair/CMakeFiles/dart_repair.dir/engine.cpp.o" "gcc" "src/repair/CMakeFiles/dart_repair.dir/engine.cpp.o.d"
  "/root/repo/src/repair/repair.cpp" "src/repair/CMakeFiles/dart_repair.dir/repair.cpp.o" "gcc" "src/repair/CMakeFiles/dart_repair.dir/repair.cpp.o.d"
  "/root/repo/src/repair/translator.cpp" "src/repair/CMakeFiles/dart_repair.dir/translator.cpp.o" "gcc" "src/repair/CMakeFiles/dart_repair.dir/translator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/constraints/CMakeFiles/dart_constraints.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/milp/CMakeFiles/dart_milp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/relational/CMakeFiles/dart_relational.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
