file(REMOVE_RECURSE
  "libdart_milp.a"
)
