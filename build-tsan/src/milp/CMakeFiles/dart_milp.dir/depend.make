# Empty dependencies file for dart_milp.
# This may be replaced when dependencies are built.
