file(REMOVE_RECURSE
  "CMakeFiles/dart_milp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/dart_milp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/dart_milp.dir/exhaustive.cpp.o"
  "CMakeFiles/dart_milp.dir/exhaustive.cpp.o.d"
  "CMakeFiles/dart_milp.dir/model.cpp.o"
  "CMakeFiles/dart_milp.dir/model.cpp.o.d"
  "CMakeFiles/dart_milp.dir/presolve.cpp.o"
  "CMakeFiles/dart_milp.dir/presolve.cpp.o.d"
  "CMakeFiles/dart_milp.dir/scheduler.cpp.o"
  "CMakeFiles/dart_milp.dir/scheduler.cpp.o.d"
  "CMakeFiles/dart_milp.dir/simplex.cpp.o"
  "CMakeFiles/dart_milp.dir/simplex.cpp.o.d"
  "libdart_milp.a"
  "libdart_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
