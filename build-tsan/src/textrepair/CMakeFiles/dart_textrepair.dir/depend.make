# Empty dependencies file for dart_textrepair.
# This may be replaced when dependencies are built.
