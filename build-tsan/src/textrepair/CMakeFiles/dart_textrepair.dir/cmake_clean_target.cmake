file(REMOVE_RECURSE
  "libdart_textrepair.a"
)
