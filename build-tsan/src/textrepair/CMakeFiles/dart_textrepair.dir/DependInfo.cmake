
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/textrepair/bktree.cpp" "src/textrepair/CMakeFiles/dart_textrepair.dir/bktree.cpp.o" "gcc" "src/textrepair/CMakeFiles/dart_textrepair.dir/bktree.cpp.o.d"
  "/root/repo/src/textrepair/dictionary.cpp" "src/textrepair/CMakeFiles/dart_textrepair.dir/dictionary.cpp.o" "gcc" "src/textrepair/CMakeFiles/dart_textrepair.dir/dictionary.cpp.o.d"
  "/root/repo/src/textrepair/levenshtein.cpp" "src/textrepair/CMakeFiles/dart_textrepair.dir/levenshtein.cpp.o" "gcc" "src/textrepair/CMakeFiles/dart_textrepair.dir/levenshtein.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/dart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
