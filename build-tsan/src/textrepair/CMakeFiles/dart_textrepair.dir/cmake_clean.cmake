file(REMOVE_RECURSE
  "CMakeFiles/dart_textrepair.dir/bktree.cpp.o"
  "CMakeFiles/dart_textrepair.dir/bktree.cpp.o.d"
  "CMakeFiles/dart_textrepair.dir/dictionary.cpp.o"
  "CMakeFiles/dart_textrepair.dir/dictionary.cpp.o.d"
  "CMakeFiles/dart_textrepair.dir/levenshtein.cpp.o"
  "CMakeFiles/dart_textrepair.dir/levenshtein.cpp.o.d"
  "libdart_textrepair.a"
  "libdart_textrepair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_textrepair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
