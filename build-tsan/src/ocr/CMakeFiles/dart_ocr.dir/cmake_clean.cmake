file(REMOVE_RECURSE
  "CMakeFiles/dart_ocr.dir/cash_budget.cpp.o"
  "CMakeFiles/dart_ocr.dir/cash_budget.cpp.o.d"
  "CMakeFiles/dart_ocr.dir/catalog.cpp.o"
  "CMakeFiles/dart_ocr.dir/catalog.cpp.o.d"
  "CMakeFiles/dart_ocr.dir/expense.cpp.o"
  "CMakeFiles/dart_ocr.dir/expense.cpp.o.d"
  "CMakeFiles/dart_ocr.dir/noise.cpp.o"
  "CMakeFiles/dart_ocr.dir/noise.cpp.o.d"
  "libdart_ocr.a"
  "libdart_ocr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_ocr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
