
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocr/cash_budget.cpp" "src/ocr/CMakeFiles/dart_ocr.dir/cash_budget.cpp.o" "gcc" "src/ocr/CMakeFiles/dart_ocr.dir/cash_budget.cpp.o.d"
  "/root/repo/src/ocr/catalog.cpp" "src/ocr/CMakeFiles/dart_ocr.dir/catalog.cpp.o" "gcc" "src/ocr/CMakeFiles/dart_ocr.dir/catalog.cpp.o.d"
  "/root/repo/src/ocr/expense.cpp" "src/ocr/CMakeFiles/dart_ocr.dir/expense.cpp.o" "gcc" "src/ocr/CMakeFiles/dart_ocr.dir/expense.cpp.o.d"
  "/root/repo/src/ocr/noise.cpp" "src/ocr/CMakeFiles/dart_ocr.dir/noise.cpp.o" "gcc" "src/ocr/CMakeFiles/dart_ocr.dir/noise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/acquire/CMakeFiles/dart_acquire.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dbgen/CMakeFiles/dart_dbgen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wrapper/CMakeFiles/dart_wrapper.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/relational/CMakeFiles/dart_relational.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dart_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/textrepair/CMakeFiles/dart_textrepair.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
