file(REMOVE_RECURSE
  "libdart_ocr.a"
)
