# Empty compiler generated dependencies file for dart_ocr.
# This may be replaced when dependencies are built.
