// Tests for the simulation substrate: the cash-budget and catalog fixtures
// are consistent by construction, the renderer emits parseable documents,
// and the OCR noise model corrupts deterministically and visibly.

#include <gtest/gtest.h>

#include <set>

#include "constraints/eval.h"
#include "constraints/parser.h"
#include "ocr/cash_budget.h"
#include "ocr/catalog.h"
#include "ocr/noise.h"
#include "wrapper/html_parser.h"

namespace dart::ocr {
namespace {

cons::ConstraintSet ParseProgram(const rel::Database& db,
                                 const std::string& program) {
  cons::ConstraintSet constraints;
  Status status =
      cons::ParseConstraintProgram(db.Schema(), program, &constraints);
  DART_CHECK_MSG(status.ok(), status.ToString());
  return constraints;
}

TEST(CashBudgetFixtureTest, PaperExampleMatchesFigure3) {
  auto db = CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(db.ok());
  const rel::Relation* relation = db->FindRelation("CashBudget");
  ASSERT_NE(relation, nullptr);
  ASSERT_EQ(relation->size(), 20u);
  // Spot-check tuples against Fig. 3.
  EXPECT_EQ(relation->At(0, 2), rel::Value("beginning cash"));
  EXPECT_EQ(relation->At(0, 4), rel::Value(20));
  EXPECT_EQ(relation->At(3, 4), rel::Value(250));  // the acquisition error
  EXPECT_EQ(relation->At(13, 4), rel::Value(200));
  EXPECT_EQ(relation->At(19, 4), rel::Value(90));
  // The clean variant has 220.
  auto clean = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->FindRelation("CashBudget")->At(3, 4), rel::Value(220));
}

class RandomBudgetTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomBudgetTest, GeneratedBudgetsAreConsistent) {
  Rng rng(42 + GetParam());
  CashBudgetOptions options;
  options.num_years = 1 + GetParam() % 4;
  options.receipt_details = 1 + GetParam() % 5;
  options.disbursement_details = 1 + (GetParam() / 2) % 4;
  auto db = CashBudgetFixture::Random(options, &rng);
  ASSERT_TRUE(db.ok());
  cons::ConstraintSet constraints =
      ParseProgram(*db, CashBudgetFixture::ConstraintProgram());
  cons::ConsistencyChecker checker(&constraints);
  auto consistent = checker.IsConsistent(*db);
  ASSERT_TRUE(consistent.ok());
  EXPECT_TRUE(*consistent);
  // Row count: years × (receipts + disbursements + 5).
  const size_t expected =
      static_cast<size_t>(options.num_years) *
      (options.receipt_details + options.disbursement_details + 5);
  EXPECT_EQ(db->FindRelation("CashBudget")->size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RandomBudgetTest, ::testing::Range(0, 10));

TEST(CashBudgetFixtureTest, YearsChainThroughEndingBalance) {
  Rng rng(5);
  CashBudgetOptions options;
  options.num_years = 3;
  auto db = CashBudgetFixture::Random(options, &rng);
  ASSERT_TRUE(db.ok());
  const rel::Relation* relation = db->FindRelation("CashBudget");
  const size_t per_year = relation->size() / 3;
  for (size_t year = 1; year < 3; ++year) {
    const rel::Value prev_ending =
        relation->At(year * per_year - 1, 4);               // ending balance
    const rel::Value this_beginning = relation->At(year * per_year, 4);
    EXPECT_EQ(prev_ending, this_beginning);
  }
}

TEST(CashBudgetFixtureTest, RenderedHtmlRoundTripsStructure) {
  auto db = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(db.ok());
  const std::string html = CashBudgetFixture::RenderHtml(*db);
  auto tables = wrap::ParseHtmlTables(html);
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->size(), 2u);
  // First row of year table carries Year + Section + Subsection + Value;
  // later rows omit the spanned cells.
  EXPECT_EQ((*tables)[0].rows.size(), 10u);
  EXPECT_EQ((*tables)[0].rows[0].size(), 4u);
  EXPECT_EQ((*tables)[0].rows[1].size(), 2u);
  EXPECT_EQ((*tables)[0].rows[0][0].text, "2003");
  EXPECT_EQ((*tables)[0].rows[0][0].rowspan, 10);
}

TEST(CatalogFixtureTest, GeneratedCatalogsAreConsistent) {
  Rng rng(17);
  CatalogOptions options;
  options.num_categories = 4;
  options.items_per_category = 3;
  auto db = CatalogFixture::Random(options, &rng);
  ASSERT_TRUE(db.ok());
  cons::ConstraintSet constraints =
      ParseProgram(*db, CatalogFixture::ConstraintProgram());
  cons::ConsistencyChecker checker(&constraints);
  EXPECT_TRUE(*checker.IsConsistent(*db));
  // 4 × (3 items + 1 total) + 1 grand total.
  EXPECT_EQ(db->FindRelation("Catalog")->size(), 17u);
}

TEST(NoiseModelTest, DeterministicUnderSeed) {
  Rng rng1(9), rng2(9);
  NoiseModel a({1.0, 1.0, 2, 2}, &rng1);
  NoiseModel b({1.0, 1.0, 2, 2}, &rng2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.CorruptNumber("12345"), b.CorruptNumber("12345"));
    EXPECT_EQ(a.CorruptText("beginning cash"), b.CorruptText("beginning cash"));
  }
}

TEST(NoiseModelTest, CorruptionIsVisibleAndDigitsOnly) {
  Rng rng(31);
  NoiseModel model({1.0, 0.0, 1, 1}, &rng);
  for (int i = 0; i < 100; ++i) {
    const std::string out = model.CorruptNumber("220");
    EXPECT_NE(out, "220");
    EXPECT_EQ(out.size(), 3u);  // substitutions keep length
    for (char c : out) EXPECT_TRUE(c >= '0' && c <= '9');
  }
  EXPECT_EQ(model.numbers_corrupted(), 100u);
}

TEST(NoiseModelTest, ZeroProbabilityNeverFires) {
  Rng rng(1);
  NoiseModel model({0.0, 0.0, 1, 1}, &rng);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(model.MaybeCorruptNumber("42"), "42");
    EXPECT_EQ(model.MaybeCorruptText("hello"), "hello");
  }
  EXPECT_EQ(model.numbers_corrupted(), 0u);
  EXPECT_EQ(model.strings_corrupted(), 0u);
}

TEST(NoiseModelTest, TextCorruptionAlwaysDiffers) {
  Rng rng(8);
  NoiseModel model({0.0, 1.0, 1, 2}, &rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(model.CorruptText("beginning cash"), "beginning cash");
  }
}

TEST(InjectMeasureErrorsTest, InjectsDistinctCellsWithGroundTruth) {
  Rng rng(21);
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  rel::Database noisy = truth->Clone();
  auto injected = InjectMeasureErrors(&noisy, 5, &rng);
  ASSERT_TRUE(injected.ok()) << injected.status().ToString();
  ASSERT_EQ(injected->size(), 5u);
  std::set<rel::CellRef> cells;
  for (const InjectedError& error : *injected) {
    EXPECT_TRUE(cells.insert(error.cell).second) << "duplicate cell";
    EXPECT_NE(error.true_value, error.corrupted_value);
    EXPECT_EQ(*noisy.ValueAt(error.cell), error.corrupted_value);
    EXPECT_EQ(*truth->ValueAt(error.cell), error.true_value);
  }
  EXPECT_EQ(*truth->CountDifferences(noisy), 5u);
}

TEST(InjectMeasureErrorsTest, RefusesMoreErrorsThanCells) {
  Rng rng(2);
  auto db = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(InjectMeasureErrors(&*db, 21, &rng).ok());
}

TEST(NoisyRenderTest, NoiseSurfacesInHtml) {
  Rng rng(55);
  auto db = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(db.ok());
  NoiseModel noise({1.0, 1.0, 1, 2}, &rng);
  const std::string noisy = CashBudgetFixture::RenderHtml(*db, &noise);
  const std::string clean = CashBudgetFixture::RenderHtml(*db);
  EXPECT_NE(noisy, clean);
  EXPECT_GT(noise.numbers_corrupted() + noise.strings_corrupted(), 0u);
}

}  // namespace
}  // namespace dart::ocr
