// Tests for the confidence-weighted (weight-minimal) repair extension:
// per-cell change weights steer ambiguous optima toward low-confidence
// cells, the end-to-end pipeline carries wrapper scores into the repair
// objective, and degenerate weights are rejected.

#include <gtest/gtest.h>

#include "constraints/parser.h"
#include "core/pipeline.h"
#include "ocr/cash_budget.h"
#include "repair/engine.h"

namespace dart::repair {
namespace {

using ocr::CashBudgetFixture;

class WeightedRepairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The compensating-corruption instance: cash sales 100→150 and total
    // receipts 220→270. Two cardinality-2 optima exist:
    //   A: {cash sales→100, total→220}   (rows 1 and 3)
    //   B: {net inflow→110, ending→130}  (rows 8 and 9)
    auto db = CashBudgetFixture::PaperExample(false);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    ASSERT_TRUE(db_.UpdateCell({"CashBudget", 1, 4}, rel::Value(150)).ok());
    ASSERT_TRUE(db_.UpdateCell({"CashBudget", 3, 4}, rel::Value(270)).ok());
    Status status = cons::ParseConstraintProgram(
        db_.Schema(), CashBudgetFixture::ConstraintProgram(), &constraints_);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  static bool Touches(const Repair& repair, size_t row) {
    for (const AtomicUpdate& update : repair.updates()) {
      if (update.cell.row == row) return true;
    }
    return false;
  }

  rel::Database db_;
  cons::ConstraintSet constraints_;
};

TEST_F(WeightedRepairTest, WeightsSteerAmbiguousOptimum) {
  // Make the corrupted cells cheap to change: the weighted optimum must be
  // explanation A (restore the true values).
  RepairEngineOptions options;
  options.translator.weights = {{{"CashBudget", 1, 4}, 0.2},
                                {{"CashBudget", 3, 4}, 0.2}};
  RepairEngine engine(options);
  auto outcome = engine.ComputeRepair(db_, constraints_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(Touches(outcome->repair, 1));
  EXPECT_TRUE(Touches(outcome->repair, 3));
  EXPECT_FALSE(Touches(outcome->repair, 8));
  EXPECT_FALSE(Touches(outcome->repair, 9));
  auto repaired = outcome->repair.Applied(db_);
  ASSERT_TRUE(repaired.ok());
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(*repaired->CountDifferences(*truth), 0u);
}

TEST_F(WeightedRepairTest, OppositeWeightsSteerTheOtherWay) {
  // Make the derived cells cheap instead: explanation B wins.
  RepairEngineOptions options;
  options.translator.weights = {{{"CashBudget", 8, 4}, 0.2},
                                {{"CashBudget", 9, 4}, 0.2}};
  RepairEngine engine(options);
  auto outcome = engine.ComputeRepair(db_, constraints_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(Touches(outcome->repair, 8));
  EXPECT_TRUE(Touches(outcome->repair, 9));
  EXPECT_FALSE(Touches(outcome->repair, 1));
  EXPECT_FALSE(Touches(outcome->repair, 3));
}

TEST_F(WeightedRepairTest, UniformWeightsEqualCardMinimal) {
  RepairEngineOptions weighted;
  weighted.translator.weights = {{{"CashBudget", 1, 4}, 1.0}};
  RepairEngine a(weighted), b;
  auto wa = a.ComputeRepair(db_, constraints_);
  auto wb = b.ComputeRepair(db_, constraints_);
  ASSERT_TRUE(wa.ok() && wb.ok());
  EXPECT_EQ(wa->repair.cardinality(), wb->repair.cardinality());
}

TEST_F(WeightedRepairTest, NonPositiveWeightRejected) {
  RepairEngineOptions options;
  options.translator.weights = {{{"CashBudget", 1, 4}, 0.0}};
  RepairEngine engine(options);
  auto outcome = engine.ComputeRepair(db_, constraints_);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WeightedRepairTest, WeightMinimalMayBeatCardMinimalOnWeight) {
  // With extreme weights, a 2-change repair on cheap cells can be preferred
  // over... cardinality stays 2 here, but total weight of the chosen optimum
  // must be minimal: verify the objective accounting by comparing both
  // explanations' weights.
  RepairEngineOptions options;
  options.translator.weights = {{{"CashBudget", 1, 4}, 0.3},
                                {{"CashBudget", 3, 4}, 0.3},
                                {{"CashBudget", 8, 4}, 0.9},
                                {{"CashBudget", 9, 4}, 0.9}};
  RepairEngine engine(options);
  auto outcome = engine.ComputeRepair(db_, constraints_);
  ASSERT_TRUE(outcome.ok());
  // Weight 0.6 (A) < 1.8 (B): A must be chosen.
  EXPECT_TRUE(Touches(outcome->repair, 1));
  EXPECT_TRUE(Touches(outcome->repair, 3));
}

TEST(PipelineConfidenceTest, WrapperScoresReachTheRepairObjective) {
  // Corrupt the Value of cash sales 2003 into a letter-contaminated numeral
  // in the HTML ("1O0"-style): extraction yields a wrong value at sub-100%
  // confidence. With confidence weights on, the repair prefers that cell
  // over equally-cheap alternatives.
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  std::string html = CashBudgetFixture::RenderHtml(*truth);
  // 100 → "1O0" for the 2003 cash sales row; also bump the receipts total
  // 220 → 270 cleanly so an ambiguity exists for the weights to resolve...
  // keep it simple: only the letter corruption; extracted value becomes 10.
  size_t pos = html.find("<td>100</td>");
  ASSERT_NE(pos, std::string::npos);
  html.replace(pos, 12, "<td>1O0</td>");

  core::AcquisitionMetadata metadata;
  auto catalog = CashBudgetFixture::BuildCatalog(*truth);
  auto mapping = CashBudgetFixture::BuildMapping(*truth);
  ASSERT_TRUE(catalog.ok() && mapping.ok());
  metadata.catalog = std::move(catalog).value();
  metadata.patterns = CashBudgetFixture::BuildPatterns();
  metadata.mappings = {std::move(mapping).value()};
  metadata.constraint_program = CashBudgetFixture::ConstraintProgram();
  core::PipelineOptions options;
  options.use_confidence_weights = true;
  auto pipeline = core::DartPipeline::Create(std::move(metadata), options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  auto outcome = pipeline->Submit(core::ProcessRequest::FromHtml(html));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // The acquisition carries a sub-1.0 confidence for the corrupted cell.
  bool low_confidence_seen = false;
  for (const dbgen::CellConfidence& confidence :
       outcome->acquisition.confidences) {
    if (confidence.score < 1.0) low_confidence_seen = true;
  }
  EXPECT_TRUE(low_confidence_seen);
  // And the final repaired database equals the source document.
  EXPECT_EQ(*outcome->repaired.CountDifferences(*truth), 0u);
}

}  // namespace
}  // namespace dart::repair
