// Cross-module property tests. The central one: for any generated corpus
// with any injected errors, the *ground truth assignment* is always a
// feasible point of the translated MILP S*(AC) with objective equal to the
// number of injected errors — so the solver's optimum can never exceed it,
// and a card-minimal repair always exists for our noise model.

#include <gtest/gtest.h>

#include <cmath>

#include "constraints/parser.h"
#include "milp/model.h"
#include "ocr/cash_budget.h"
#include "ocr/catalog.h"
#include "ocr/noise.h"
#include "relational/csv.h"
#include "repair/translator.h"
#include "util/random.h"
#include "wrapper/html_parser.h"

namespace dart {
namespace {

cons::ConstraintSet ParseProgram(const rel::Database& db,
                                 const std::string& program) {
  cons::ConstraintSet constraints;
  Status status =
      cons::ParseConstraintProgram(db.Schema(), program, &constraints);
  DART_CHECK_MSG(status.ok(), status.ToString());
  return constraints;
}

class TruthFeasibilityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TruthFeasibilityTest, GroundTruthIsFeasibleWithErrorCountObjective) {
  const auto [seed, errors] = GetParam();
  Rng rng(31000 + seed);
  ocr::CashBudgetOptions options;
  options.num_years = 2;
  auto truth = ocr::CashBudgetFixture::Random(options, &rng);
  ASSERT_TRUE(truth.ok());
  rel::Database acquired = truth->Clone();
  auto injected = ocr::InjectMeasureErrors(&acquired, errors, &rng);
  ASSERT_TRUE(injected.ok());
  cons::ConstraintSet constraints =
      ParseProgram(acquired, ocr::CashBudgetFixture::ConstraintProgram());

  auto translation = repair::TranslateToMilp(acquired, constraints);
  ASSERT_TRUE(translation.ok()) << translation.status().ToString();

  // Assemble the truth point: z = true value, y = z − v, δ = [y ≠ 0].
  std::vector<double> point(
      static_cast<size_t>(translation->model.num_variables()), 0.0);
  double objective = 0;
  for (size_t i = 0; i < translation->cells.size(); ++i) {
    auto true_value = truth->ValueAt(translation->cells[i]);
    ASSERT_TRUE(true_value.ok());
    const double z = true_value->AsReal();
    const double y = z - translation->current_values[i];
    const double delta = std::fabs(y) > 1e-9 ? 1.0 : 0.0;
    point[static_cast<size_t>(translation->z_vars[i])] = z;
    point[static_cast<size_t>(translation->y_vars[i])] = y;
    point[static_cast<size_t>(translation->delta_vars[i])] = delta;
    objective += delta;
  }
  EXPECT_TRUE(milp::IsFeasiblePoint(translation->model, point, 1e-6))
      << "truth assignment infeasible for seed " << seed;
  EXPECT_DOUBLE_EQ(objective, static_cast<double>(errors));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TruthFeasibilityTest,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Values(1, 3, 5)));

TEST(TruthFeasibilityTest, HoldsForCatalogDomainToo) {
  Rng rng(555);
  auto truth = ocr::CatalogFixture::Random({}, &rng);
  ASSERT_TRUE(truth.ok());
  rel::Database acquired = truth->Clone();
  auto injected = ocr::InjectMeasureErrors(&acquired, 3, &rng);
  ASSERT_TRUE(injected.ok());
  cons::ConstraintSet constraints =
      ParseProgram(acquired, ocr::CatalogFixture::ConstraintProgram());
  auto translation = repair::TranslateToMilp(acquired, constraints);
  ASSERT_TRUE(translation.ok());
  std::vector<double> point(
      static_cast<size_t>(translation->model.num_variables()), 0.0);
  for (size_t i = 0; i < translation->cells.size(); ++i) {
    const double z = truth->ValueAt(translation->cells[i])->AsReal();
    const double y = z - translation->current_values[i];
    point[static_cast<size_t>(translation->z_vars[i])] = z;
    point[static_cast<size_t>(translation->y_vars[i])] = y;
    point[static_cast<size_t>(translation->delta_vars[i])] =
        std::fabs(y) > 1e-9 ? 1.0 : 0.0;
  }
  EXPECT_TRUE(milp::IsFeasiblePoint(translation->model, point, 1e-6));
}

class CsvFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CsvFuzzTest, RandomRelationsRoundTrip) {
  Rng rng(47000 + GetParam());
  auto schema = rel::RelationSchema::Create(
      "Fuzz", {{"S", rel::Domain::kString, false},
               {"I", rel::Domain::kInt, true},
               {"R", rel::Domain::kReal, true}});
  ASSERT_TRUE(schema.ok());
  rel::Relation relation(*schema);
  const char kAlphabet[] = "ab,\"'\n x-";
  const int rows = static_cast<int>(rng.UniformInt(0, 20));
  for (int r = 0; r < rows; ++r) {
    std::string s;
    const int length = static_cast<int>(rng.UniformInt(0, 12));
    for (int c = 0; c < length; ++c) {
      s += kAlphabet[rng.UniformInt(0, static_cast<int64_t>(sizeof(kAlphabet)) - 2)];
    }
    const int64_t i = rng.UniformInt(-1000000, 1000000);
    const double real = rng.UniformReal(-100, 100);
    ASSERT_TRUE(relation
                    .Insert({rel::Value(s), rel::Value(i),
                             rel::Value(std::round(real * 64) / 64)})
                    .ok());
  }
  auto parsed = rel::ReadCsv(*schema, rel::WriteCsv(relation));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), relation.size());
  for (size_t r = 0; r < relation.size(); ++r) {
    EXPECT_EQ(parsed->At(r, 0), relation.At(r, 0));
    EXPECT_EQ(parsed->At(r, 1), relation.At(r, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest, ::testing::Range(0, 10));

class HtmlRoundTripFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(HtmlRoundTripFuzzTest, RenderedBudgetsAlwaysParseBack) {
  Rng rng(52000 + GetParam());
  ocr::CashBudgetOptions options;
  options.num_years = 1 + static_cast<int>(rng.UniformInt(0, 3));
  options.receipt_details = 1 + static_cast<int>(rng.UniformInt(0, 4));
  options.disbursement_details = 1 + static_cast<int>(rng.UniformInt(0, 4));
  auto db = ocr::CashBudgetFixture::Random(options, &rng);
  ASSERT_TRUE(db.ok());
  ocr::NoiseModel noise({0.3, 0.3, 2, 3}, &rng);
  const std::string html = ocr::CashBudgetFixture::RenderHtml(*db, &noise);
  auto tables = wrap::ParseHtmlTables(html);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->size(), static_cast<size_t>(options.num_years));
  const size_t rows_per_year = static_cast<size_t>(
      options.receipt_details + options.disbursement_details + 5);
  for (const wrap::HtmlTable& table : *tables) {
    EXPECT_EQ(table.rows.size(), rows_per_year);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HtmlRoundTripFuzzTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace dart
