// Tests for the util module: Status/Result plumbing, string helpers, the
// seeded RNG, and the table printer.

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace dart {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kInfeasible,
        StatusCode::kParseError}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result(Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_THROW(result.value(), BadResultAccess);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  DART_ASSIGN_OR_RETURN(int half, Half(x));
  DART_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
}

TEST(StringsTest, SplitKeepsEmpties) {
  auto pieces = Split("a,,b,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[3], "");
}

TEST(StringsTest, SplitTrimmedDropsEmpties) {
  auto pieces = SplitTrimmed(" a , , b ", ',');
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, Predicates) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_TRUE(EqualsIgnoreCase("ReCeIpTs", "receipts"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringsTest, IntegerLiteral) {
  EXPECT_TRUE(IsIntegerLiteral("42"));
  EXPECT_TRUE(IsIntegerLiteral("-7"));
  EXPECT_TRUE(IsIntegerLiteral(" +3 "));
  EXPECT_FALSE(IsIntegerLiteral("3.5"));
  EXPECT_FALSE(IsIntegerLiteral("abc"));
  EXPECT_FALSE(IsIntegerLiteral(""));
  EXPECT_FALSE(IsIntegerLiteral("-"));
}

TEST(StringsTest, NumericLiteral) {
  EXPECT_TRUE(IsNumericLiteral("3.5"));
  EXPECT_TRUE(IsNumericLiteral("-0.25"));
  EXPECT_TRUE(IsNumericLiteral("42"));
  EXPECT_FALSE(IsNumericLiteral("1e"));
  EXPECT_FALSE(IsNumericLiteral("12x"));
  EXPECT_FALSE(IsNumericLiteral(""));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-12.0), "-12");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, WeightedIndexHonorsZeroWeights) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.WeightedIndex({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(11);
  auto sample = rng.SampleIndices(10, 6);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
  for (size_t index : sample) EXPECT_LT(index, 10u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"name", "n"});
  printer.AddRow({"alpha", "1"});
  printer.AddRow({"b", "22"});
  const std::string out = printer.ToString();
  EXPECT_NE(out.find("name  | n"), std::string::npos);
  EXPECT_NE(out.find("alpha | 1"), std::string::npos);
  EXPECT_NE(out.find("b     | 22"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter printer({"a", "b", "c"});
  printer.AddRow({"x"});
  EXPECT_EQ(printer.row_count(), 1u);
  EXPECT_NO_THROW(printer.ToString());
}

}  // namespace
}  // namespace dart
