// Tests for the repair engine (P5 of DESIGN.md plus randomized properties):
// Example 6's repair is found and is card-minimal, Example 7's repair is a
// valid but non-minimal alternative, and on random corpora the engine always
// returns a repair that (a) satisfies AC, (b) has cardinality no larger than
// the number of injected errors, and (c) agrees with the exhaustive baseline.

#include <gtest/gtest.h>

#include "constraints/eval.h"
#include "constraints/parser.h"
#include "ocr/cash_budget.h"
#include "ocr/catalog.h"
#include "ocr/noise.h"
#include "repair/engine.h"
#include "util/random.h"

namespace dart::repair {
namespace {

using ocr::CashBudgetFixture;
using ocr::CatalogFixture;

cons::ConstraintSet ParseProgram(const rel::Database& db,
                                 const std::string& program) {
  cons::ConstraintSet constraints;
  Status status =
      cons::ParseConstraintProgram(db.Schema(), program, &constraints);
  DART_CHECK_MSG(status.ok(), status.ToString());
  return constraints;
}

TEST(RepairTest, ConsistentUpdateDetection) {
  rel::CellRef cell{"R", 0, 1};
  Repair repair({{cell, rel::Value(1), rel::Value(2)},
                 {cell, rel::Value(1), rel::Value(3)}});
  EXPECT_FALSE(repair.IsConsistentUpdate());  // same λ(u) twice — Def. 3
  Repair ok_repair({{cell, rel::Value(1), rel::Value(2)},
                    {rel::CellRef{"R", 1, 1}, rel::Value(1), rel::Value(3)}});
  EXPECT_TRUE(ok_repair.IsConsistentUpdate());
}

TEST(RepairTest, ApplyProducesExample6Database) {
  auto db = CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(db.ok());
  // ρ = {⟨t, Value, 220⟩} with t = total cash receipts 2003 (row 3).
  Repair repair({{rel::CellRef{"CashBudget", 3, 4}, rel::Value(250),
                  rel::Value(220)}});
  auto repaired = repair.Applied(*db);
  ASSERT_TRUE(repaired.ok());
  auto value = repaired->ValueAt({"CashBudget", 3, 4});
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, rel::Value(220));
  // Original untouched.
  EXPECT_EQ(*db->ValueAt({"CashBudget", 3, 4}), rel::Value(250));
}

TEST(RepairTest, NonMeasureUpdateRejected) {
  auto db = CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(db.ok());
  Repair repair(
      {{rel::CellRef{"CashBudget", 3, 0}, rel::Value(2003), rel::Value(2005)}});
  EXPECT_FALSE(repair.ApplyTo(&*db).ok());  // Year is not in M_D
}

class RunningExampleEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = CashBudgetFixture::PaperExample(true);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    constraints_ = ParseProgram(db_, CashBudgetFixture::ConstraintProgram());
  }

  rel::Database db_;
  cons::ConstraintSet constraints_;
};

TEST_F(RunningExampleEngineTest, FindsExample6CardMinimalRepair) {
  RepairEngine engine;
  auto outcome = engine.ComputeRepair(db_, constraints_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->repair.cardinality(), 1u);
  const AtomicUpdate& update = outcome->repair.updates()[0];
  EXPECT_EQ(update.cell, (rel::CellRef{"CashBudget", 3, 4}));
  EXPECT_EQ(update.old_value, rel::Value(250));
  EXPECT_EQ(update.new_value, rel::Value(220));
  EXPECT_FALSE(outcome->already_consistent);
  EXPECT_EQ(outcome->stats.num_cells, 20u);
  EXPECT_EQ(outcome->stats.num_ground_rows, 8u);
}

TEST_F(RunningExampleEngineTest, Example7RepairIsValidButNotMinimal) {
  // ρ' changes cash sales → 130, long-term financing → 70... the paper's ρ'
  // is {t1→130, t2→70, t3→190}: verify it repairs the database but has
  // cardinality 3 > 1.
  Repair rho_prime({
      {rel::CellRef{"CashBudget", 1, 4}, rel::Value(100), rel::Value(130)},
      {rel::CellRef{"CashBudget", 6, 4}, rel::Value(40), rel::Value(70)},
      {rel::CellRef{"CashBudget", 7, 4}, rel::Value(160), rel::Value(190)},
  });
  auto repaired = rho_prime.Applied(db_);
  ASSERT_TRUE(repaired.ok());
  cons::ConsistencyChecker checker(&constraints_);
  auto consistent = checker.IsConsistent(*repaired);
  ASSERT_TRUE(consistent.ok());
  EXPECT_TRUE(*consistent);
  EXPECT_EQ(rho_prime.cardinality(), 3u);

  RepairEngine engine;
  auto outcome = engine.ComputeRepair(db_, constraints_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LT(outcome->repair.cardinality(), rho_prime.cardinality());
}

TEST_F(RunningExampleEngineTest, ConsistentInputShortCircuits) {
  auto clean = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(clean.ok());
  obs::RunContext run;
  RepairEngineOptions engine_options;
  engine_options.run = &run;
  RepairEngine engine(engine_options);
  auto outcome = engine.ComputeRepair(*clean, constraints_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->already_consistent);
  EXPECT_TRUE(outcome->repair.empty());
  // The fast path never reaches the solver: no milp.nodes published.
  EXPECT_EQ(run.metrics().Snapshot().Counter("milp.nodes"), 0);
}

TEST_F(RunningExampleEngineTest, OperatorPinForcesAlternativeRepair) {
  // The operator rejects the 250→220 suggestion claiming the document really
  // says 250: the next repair must keep z₄ = 250 and fix other cells.
  std::vector<FixedValue> pins = {{rel::CellRef{"CashBudget", 3, 4}, 250.0}};
  RepairEngine engine;
  auto outcome = engine.ComputeRepair(db_, constraints_, pins);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  auto repaired = outcome->repair.Applied(db_);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired->ValueAt({"CashBudget", 3, 4}), rel::Value(250));
  cons::ConsistencyChecker checker(&constraints_);
  EXPECT_TRUE(*checker.IsConsistent(*repaired));
  EXPECT_GE(outcome->repair.cardinality(), 2u);
}

TEST_F(RunningExampleEngineTest, DisplayOrderPutsMostConstrainedFirst) {
  std::vector<FixedValue> pins = {{rel::CellRef{"CashBudget", 3, 4}, 250.0}};
  RepairEngine engine;
  auto outcome = engine.ComputeRepair(db_, constraints_, pins);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GE(outcome->repair.cardinality(), 2u);
  // Sec. 6.3: updates are displayed most-constrained-cell first. Verify the
  // order is non-increasing in ground-row occurrence count.
  auto translation = TranslateToMilp(db_, constraints_, {}, pins);
  ASSERT_TRUE(translation.ok());
  int previous = 1 << 30;
  for (const AtomicUpdate& update : outcome->repair.updates()) {
    const int index = translation->CellIndex(update.cell);
    ASSERT_GE(index, 0);
    const int count = translation->occurrence_counts[index];
    EXPECT_LE(count, previous);
    previous = count;
  }
}

TEST_F(RunningExampleEngineTest, ExhaustiveSolverAgrees) {
  // Exhaustive enumeration is 2^N residual solves, so cross-check on a
  // one-year, two-detail budget (7 measure cells → 128 assignments).
  RepairEngineOptions options;
  options.use_exhaustive_solver = true;
  ocr::CashBudgetOptions small;
  small.num_years = 1;
  small.receipt_details = 1;
  small.disbursement_details = 1;
  Rng rng(7);
  auto truth = CashBudgetFixture::Random(small, &rng);
  ASSERT_TRUE(truth.ok());
  rel::Database noisy = truth->Clone();
  auto injected = ocr::InjectMeasureErrors(&noisy, 1, &rng);
  ASSERT_TRUE(injected.ok());
  cons::ConstraintSet constraints =
      ParseProgram(noisy, CashBudgetFixture::ConstraintProgram());

  RepairEngine exhaustive(options);
  RepairEngine standard;
  auto a = exhaustive.ComputeRepair(noisy, constraints);
  auto b = standard.ComputeRepair(noisy, constraints);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->repair.cardinality(), b->repair.cardinality());
}

// --- Randomized properties ------------------------------------------------

class RepairPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RepairPropertyTest, RepairSatisfiesConstraintsAndIsBounded) {
  const auto [seed, errors] = GetParam();
  Rng rng(1000 + seed);
  ocr::CashBudgetOptions options;
  options.num_years = 2;
  auto truth = CashBudgetFixture::Random(options, &rng);
  ASSERT_TRUE(truth.ok());
  rel::Database noisy = truth->Clone();
  auto injected = ocr::InjectMeasureErrors(&noisy, errors, &rng);
  ASSERT_TRUE(injected.ok());
  cons::ConstraintSet constraints =
      ParseProgram(noisy, CashBudgetFixture::ConstraintProgram());

  RepairEngine engine;
  auto outcome = engine.ComputeRepair(noisy, constraints);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // (a) ρ(D) ⊨ AC.
  auto repaired = outcome->repair.Applied(noisy);
  ASSERT_TRUE(repaired.ok());
  cons::ConsistencyChecker checker(&constraints);
  EXPECT_TRUE(*checker.IsConsistent(*repaired));
  // (b) card-minimality upper bound: restoring the injected cells is itself
  // a repair, so the minimal one cannot be larger.
  EXPECT_LE(outcome->repair.cardinality(), static_cast<size_t>(errors));
  // (c) Def. 3 consistency of the update set.
  EXPECT_TRUE(outcome->repair.IsConsistentUpdate());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RepairPropertyTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(1, 2, 4)));

TEST(RepairCatalogTest, TwoLevelHierarchyRepairs) {
  Rng rng(99);
  ocr::CatalogOptions options;
  auto truth = CatalogFixture::Random(options, &rng);
  ASSERT_TRUE(truth.ok());
  rel::Database noisy = truth->Clone();
  auto injected = ocr::InjectMeasureErrors(&noisy, 2, &rng);
  ASSERT_TRUE(injected.ok());
  cons::ConstraintSet constraints =
      ParseProgram(noisy, CatalogFixture::ConstraintProgram());
  RepairEngine engine;
  auto outcome = engine.ComputeRepair(noisy, constraints);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  auto repaired = outcome->repair.Applied(noisy);
  ASSERT_TRUE(repaired.ok());
  cons::ConsistencyChecker checker(&constraints);
  EXPECT_TRUE(*checker.IsConsistent(*repaired));
  EXPECT_LE(outcome->repair.cardinality(), 2u);
}

}  // namespace
}  // namespace dart::repair
