// Tests for the text-repair substrate: edit distances, the BK-tree index,
// and the scenario dictionary — including the paper's "bgnning cesh" →
// "beginning cash" correction (Example 13).

#include <gtest/gtest.h>

#include "textrepair/bktree.h"
#include "textrepair/dictionary.h"
#include "textrepair/levenshtein.h"
#include "util/random.h"

namespace dart::text {
namespace {

TEST(LevenshteinTest, BaseCases) {
  EXPECT_EQ(Levenshtein("", ""), 0u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
  EXPECT_EQ(Levenshtein("", "abc"), 3u);
  EXPECT_EQ(Levenshtein("abc", "abc"), 0u);
}

TEST(LevenshteinTest, ClassicExamples) {
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(Levenshtein("beginning cash", "bgnning cesh"), 3u);
}

TEST(LevenshteinTest, Symmetry) {
  EXPECT_EQ(Levenshtein("abcdef", "azced"), Levenshtein("azced", "abcdef"));
}

TEST(DamerauTest, TranspositionCostsOne) {
  EXPECT_EQ(Levenshtein("ab", "ba"), 2u);
  EXPECT_EQ(DamerauLevenshtein("ab", "ba"), 1u);
  EXPECT_EQ(DamerauLevenshtein("receipts", "reciepts"), 1u);
}

TEST(BoundedLevenshteinTest, ExactWithinBound) {
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 3), 3u);
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 5), 3u);
}

TEST(BoundedLevenshteinTest, ExceedsBound) {
  EXPECT_GT(BoundedLevenshtein("kitten", "sitting", 2), 2u);
  EXPECT_GT(BoundedLevenshtein("aaaa", "bbbbbbbb", 3), 3u);
}

class BoundedAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundedAgreementTest, MatchesExactWhenWithinBound) {
  Rng rng(GetParam());
  auto random_word = [&](size_t length) {
    std::string word;
    for (size_t i = 0; i < length; ++i) {
      word += static_cast<char>('a' + rng.UniformInt(0, 5));
    }
    return word;
  };
  for (int i = 0; i < 50; ++i) {
    std::string a = random_word(static_cast<size_t>(rng.UniformInt(0, 12)));
    std::string b = random_word(static_cast<size_t>(rng.UniformInt(0, 12)));
    const size_t exact = Levenshtein(a, b);
    for (size_t bound : {size_t{0}, size_t{2}, size_t{5}, size_t{20}}) {
      const size_t banded = BoundedLevenshtein(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(banded, exact) << a << " vs " << b << " bound " << bound;
      } else {
        EXPECT_GT(banded, bound) << a << " vs " << b << " bound " << bound;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedAgreementTest, ::testing::Range(0, 5));

TEST(SimilarityTest, NormalizedRange) {
  EXPECT_DOUBLE_EQ(Similarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(Similarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(Similarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(Similarity("beginning cash", "bgnning cesh"),
              1.0 - 3.0 / 14.0, 1e-12);
}

TEST(SimilarityTest, CaseInsensitiveVariant) {
  EXPECT_DOUBLE_EQ(SimilarityIgnoreCase("Receipts", "RECEIPTS"), 1.0);
  EXPECT_LT(Similarity("Receipts", "RECEIPTS"), 1.0);
}

TEST(BkTreeTest, InsertAndRadiusSearch) {
  BkTree tree;
  for (const char* word :
       {"book", "books", "cake", "boo", "cape", "cart", "boon", "cook"}) {
    tree.Insert(word);
  }
  EXPECT_EQ(tree.size(), 8u);
  auto hits = tree.RadiusSearch("book", 1);
  // book(0), books(1), boo(1), boon(1), cook(1).
  ASSERT_EQ(hits.size(), 5u);
  EXPECT_EQ(hits[0].first, "book");
  EXPECT_EQ(hits[0].second, 0u);
  for (const auto& [word, distance] : hits) EXPECT_LE(distance, 1u);
}

TEST(BkTreeTest, DuplicatesIgnored) {
  BkTree tree;
  tree.Insert("same");
  tree.Insert("same");
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BkTreeTest, NearestFindsClosest) {
  BkTree tree;
  for (const char* word : {"receipts", "disbursements", "balance"}) {
    tree.Insert(word);
  }
  auto nearest = tree.Nearest("reciepts");
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(nearest->first, "receipts");
  EXPECT_EQ(nearest->second, 2u);
}

TEST(BkTreeTest, NearestRespectsMaxDistance) {
  BkTree tree;
  tree.Insert("abcdefgh");
  EXPECT_FALSE(tree.Nearest("zzz", 2).has_value());
  EXPECT_TRUE(tree.Nearest("abcdefgx", 2).has_value());
}

TEST(BkTreeTest, EmptyTree) {
  BkTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_FALSE(tree.Nearest("x").has_value());
  EXPECT_TRUE(tree.RadiusSearch("x", 3).empty());
}

TEST(BkTreeTest, NearestAgreesWithLinearScan) {
  Rng rng(77);
  std::vector<std::string> words;
  BkTree tree;
  for (int i = 0; i < 200; ++i) {
    std::string word;
    const int length = static_cast<int>(rng.UniformInt(3, 9));
    for (int c = 0; c < length; ++c) {
      word += static_cast<char>('a' + rng.UniformInt(0, 7));
    }
    words.push_back(word);
    tree.Insert(word);
  }
  for (int q = 0; q < 30; ++q) {
    std::string query;
    const int length = static_cast<int>(rng.UniformInt(3, 9));
    for (int c = 0; c < length; ++c) {
      query += static_cast<char>('a' + rng.UniformInt(0, 7));
    }
    auto nearest = tree.Nearest(query);
    ASSERT_TRUE(nearest.has_value());
    size_t best = std::string::npos;
    for (const std::string& word : words) {
      best = std::min(best, Levenshtein(query, word));
    }
    EXPECT_EQ(nearest->second, best) << "query " << query;
  }
}

TEST(DictionaryTest, PaperExample13Correction) {
  Dictionary dictionary;
  dictionary.AddTerms({"beginning cash", "cash sales", "receivables",
                       "total cash receipts", "payment of accounts",
                       "capital expenditure", "long-term financing",
                       "total disbursements", "net cash inflow",
                       "ending cash balance"});
  auto correction = dictionary.Correct("bgnning cesh");
  ASSERT_TRUE(correction.has_value());
  EXPECT_EQ(correction->term, "beginning cash");
  EXPECT_EQ(correction->distance, 3u);
  EXPECT_GT(correction->similarity, 0.75);
}

TEST(DictionaryTest, CaseInsensitiveExactMatch) {
  Dictionary dictionary;
  dictionary.AddTerm("Receipts");
  EXPECT_TRUE(dictionary.Contains("receipts"));
  EXPECT_TRUE(dictionary.Contains("RECEIPTS"));
  auto correction = dictionary.Correct("receipts");
  ASSERT_TRUE(correction.has_value());
  EXPECT_EQ(correction->term, "Receipts");  // canonical spelling returned
  EXPECT_DOUBLE_EQ(correction->similarity, 1.0);
}

TEST(DictionaryTest, MinSimilarityThreshold) {
  Dictionary dictionary;
  dictionary.AddTerm("balance");
  EXPECT_FALSE(dictionary.Correct("zzzzzzz", 0.5).has_value());
  EXPECT_TRUE(dictionary.Correct("balanse", 0.5).has_value());
}

TEST(DictionaryTest, SuggestionsOrderedBestFirst) {
  Dictionary dictionary;
  dictionary.AddTerms({"cart", "card", "care", "cataract"});
  auto suggestions = dictionary.Suggestions("carp", 2);
  ASSERT_GE(suggestions.size(), 3u);
  for (size_t i = 1; i < suggestions.size(); ++i) {
    EXPECT_LE(suggestions[i - 1].distance, suggestions[i].distance);
  }
}

TEST(DictionaryTest, EmptyDictionary) {
  Dictionary dictionary;
  EXPECT_EQ(dictionary.size(), 0u);
  EXPECT_FALSE(dictionary.Correct("x").has_value());
}

}  // namespace
}  // namespace dart::text
