// Tests for the MILP presolve: fixed-variable elimination, singleton-row
// bound tightening, integer rounding, infeasibility detection, solution
// lifting, and agreement with the unpresolved solver on random models and
// on pinned repair instances.

#include <gtest/gtest.h>

#include "constraints/parser.h"
#include "milp/presolve.h"
#include "ocr/cash_budget.h"
#include "repair/engine.h"
#include "util/random.h"

namespace dart::milp {
namespace {

TEST(PresolveTest, FixedVariableFoldsIntoRows) {
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 4, 4);  // fixed
  int y = model.AddVariable("y", VarType::kContinuous, 0, 10);
  model.AddRow("r", {{x, 2.0}, {y, 1.0}}, RowSense::kEq, 11);
  model.SetObjective({{x, 1.0}, {y, 1.0}}, 0, ObjectiveSense::kMinimize);
  PresolveResult presolved = Presolve(model);
  ASSERT_FALSE(presolved.infeasible);
  EXPECT_EQ(presolved.variables_eliminated, 2);  // x fixed; then row pins y=3
  EXPECT_EQ(presolved.reduced.num_variables(), 0);
  std::vector<double> lifted = presolved.RestorePoint({});
  EXPECT_DOUBLE_EQ(lifted[static_cast<size_t>(x)], 4);
  EXPECT_DOUBLE_EQ(lifted[static_cast<size_t>(y)], 3);
}

TEST(PresolveTest, SingletonRowsTightenBounds) {
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, -100, 100);
  model.AddRow("lo", {{x, 1.0}}, RowSense::kGe, -5);
  model.AddRow("hi", {{x, 2.0}}, RowSense::kLe, 14);  // x <= 7
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMaximize);
  PresolveResult presolved = Presolve(model);
  ASSERT_FALSE(presolved.infeasible);
  ASSERT_EQ(presolved.reduced.num_variables(), 1);
  EXPECT_DOUBLE_EQ(presolved.reduced.variable(0).lower, -5);
  EXPECT_DOUBLE_EQ(presolved.reduced.variable(0).upper, 7);
  EXPECT_EQ(presolved.reduced.num_rows(), 0);
}

TEST(PresolveTest, NegativeCoefficientFlipsSense) {
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, -100, 100);
  model.AddRow("r", {{x, -1.0}}, RowSense::kLe, 5);  // -x <= 5 → x >= -5
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  PresolveResult presolved = Presolve(model);
  ASSERT_EQ(presolved.reduced.num_variables(), 1);
  EXPECT_DOUBLE_EQ(presolved.reduced.variable(0).lower, -5);
}

TEST(PresolveTest, IntegerBoundsRoundInward) {
  Model model;
  int x = model.AddVariable("x", VarType::kInteger, 0, 10);
  model.AddRow("lo", {{x, 1.0}}, RowSense::kGe, 2.3);
  model.AddRow("hi", {{x, 1.0}}, RowSense::kLe, 7.8);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  PresolveResult presolved = Presolve(model);
  ASSERT_EQ(presolved.reduced.num_variables(), 1);
  EXPECT_DOUBLE_EQ(presolved.reduced.variable(0).lower, 3);
  EXPECT_DOUBLE_EQ(presolved.reduced.variable(0).upper, 7);
}

TEST(PresolveTest, DetectsInfeasibility) {
  {
    Model model;
    int x = model.AddVariable("x", VarType::kContinuous, 0, 10);
    model.AddRow("lo", {{x, 1.0}}, RowSense::kGe, 8);
    model.AddRow("hi", {{x, 1.0}}, RowSense::kLe, 3);
    EXPECT_TRUE(Presolve(model).infeasible);
  }
  {
    // Integer variable squeezed into an empty integral window.
    Model model;
    int x = model.AddVariable("x", VarType::kInteger, 0, 10);
    model.AddRow("lo", {{x, 1.0}}, RowSense::kGe, 5.2);
    model.AddRow("hi", {{x, 1.0}}, RowSense::kLe, 5.8);
    EXPECT_TRUE(Presolve(model).infeasible);
  }
  {
    // Constant row violated after substitution.
    Model model;
    int x = model.AddVariable("x", VarType::kContinuous, 3, 3);
    model.AddRow("r", {{x, 1.0}}, RowSense::kEq, 4);
    EXPECT_TRUE(Presolve(model).infeasible);
  }
}

TEST(PresolveTest, ChainsThroughEqualities) {
  // z pinned → y fixed via y = z - v → delta forced by y ≤ M·delta when
  // y != 0... presolve handles the first two; the delta stays (two-term
  // rows are not singleton), but the model still shrinks.
  Model model;
  int z = model.AddVariable("z", VarType::kInteger, -100, 100);
  int y = model.AddVariable("y", VarType::kInteger, -105, 105);
  int d = model.AddVariable("d", VarType::kBinary, 0, 1);
  model.AddRow("def", {{y, 1.0}, {z, -1.0}}, RowSense::kEq, -5);
  model.AddRow("pos", {{y, 1.0}, {d, -105.0}}, RowSense::kLe, 0);
  model.AddRow("neg", {{y, -1.0}, {d, -105.0}}, RowSense::kLe, 0);
  model.AddRow("pin", {{z, 1.0}}, RowSense::kEq, 9);
  model.SetObjective({{d, 1.0}}, 0, ObjectiveSense::kMinimize);
  PresolveResult presolved = Presolve(model);
  ASSERT_FALSE(presolved.infeasible);
  // pin fixes z=9; def becomes singleton fixing y=4; pos/neg become
  // singleton rows on d: 4 - 105 d <= 0 → d >= 4/105 → d = 1 (binary
  // rounding!). Everything eliminated.
  EXPECT_EQ(presolved.reduced.num_variables(), 0);
  std::vector<double> lifted = presolved.RestorePoint({});
  EXPECT_DOUBLE_EQ(lifted[static_cast<size_t>(z)], 9);
  EXPECT_DOUBLE_EQ(lifted[static_cast<size_t>(y)], 4);
  EXPECT_DOUBLE_EQ(lifted[static_cast<size_t>(d)], 1);
}

class PresolveAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(PresolveAgreementTest, SolveWithAndWithoutPresolveAgree) {
  Rng rng(5150 + GetParam());
  Model model;
  std::vector<int> vars;
  for (int i = 0; i < 5; ++i) {
    vars.push_back(
        model.AddVariable("b" + std::to_string(i), VarType::kBinary, 0, 1));
  }
  for (int i = 0; i < 3; ++i) {
    vars.push_back(model.AddVariable("x" + std::to_string(i),
                                     VarType::kContinuous, -4, 6));
  }
  // A couple of singleton rows to give presolve something to chew on.
  model.AddRow("s1", {{vars[5], 1.0}}, RowSense::kGe,
               static_cast<double>(rng.UniformInt(-3, 0)));
  model.AddRow("s2", {{vars[6], 1.0}}, RowSense::kEq,
               static_cast<double>(rng.UniformInt(-2, 4)));
  for (int r = 0; r < 3; ++r) {
    std::vector<LinearTerm> terms;
    for (int v : vars) {
      if (rng.Bernoulli(0.5)) {
        terms.push_back({v, static_cast<double>(rng.UniformInt(-3, 3))});
      }
    }
    if (terms.empty()) continue;
    model.AddRow("r" + std::to_string(r), terms, RowSense::kLe,
                 static_cast<double>(rng.UniformInt(0, 8)));
  }
  std::vector<LinearTerm> objective;
  for (int v : vars) {
    objective.push_back({v, static_cast<double>(rng.UniformInt(-4, 4))});
  }
  model.SetObjective(objective, 0, ObjectiveSense::kMinimize);

  MilpResult plain = SolveMilp(model);
  MilpResult presolved = SolveMilpWithPresolve(model);
  ASSERT_EQ(plain.status == MilpResult::SolveStatus::kOptimal,
            presolved.status == MilpResult::SolveStatus::kOptimal);
  if (plain.status == MilpResult::SolveStatus::kOptimal) {
    EXPECT_NEAR(plain.objective, presolved.objective, 1e-5);
    EXPECT_TRUE(IsFeasiblePoint(model, presolved.point, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, PresolveAgreementTest,
                         ::testing::Range(0, 20));

TEST(PresolveRepairTest, PinnedRepairInstancesAgree) {
  auto db = ocr::CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(db.ok());
  cons::ConstraintSet constraints;
  ASSERT_TRUE(cons::ParseConstraintProgram(
                  db->Schema(), ocr::CashBudgetFixture::ConstraintProgram(),
                  &constraints)
                  .ok());
  std::vector<repair::FixedValue> pins = {{{"CashBudget", 3, 4}, 250.0},
                                          {{"CashBudget", 1, 4}, 100.0}};
  repair::RepairEngineOptions with, without;
  with.milp.decomposition.use_presolve = true;
  without.milp.decomposition.use_presolve = false;
  repair::RepairEngine a(with), b(without);
  auto ra = a.ComputeRepair(*db, constraints, pins);
  auto rb = b.ComputeRepair(*db, constraints, pins);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(ra->repair.cardinality(), rb->repair.cardinality());
}

}  // namespace
}  // namespace dart::milp
