// Tests for the relational substrate: values, schemas, relations, database
// instances, measure-cell addressing and CSV round-trips.

#include <gtest/gtest.h>

#include "relational/csv.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace dart::rel {
namespace {

RelationSchema TestSchema() {
  auto schema = RelationSchema::Create(
      "T", {{"Name", Domain::kString, false},
            {"Qty", Domain::kInt, true},
            {"Price", Domain::kReal, true}});
  DART_CHECK(schema.ok());
  return std::move(schema).value();
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(3).is_int());
  EXPECT_TRUE(Value(3.5).is_real());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_EQ(Value(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value(7).AsReal(), 7.0);  // int widens
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_NE(Value(2), Value(2.5));
  EXPECT_NE(Value("2"), Value(2));
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value(0));
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value(), Value(1));          // null < numeric
  EXPECT_LT(Value(5), Value("a"));       // numeric < string
  EXPECT_LT(Value(1), Value(2.5));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, Conformance) {
  EXPECT_TRUE(Value(3).ConformsTo(Domain::kInt));
  EXPECT_TRUE(Value(3).ConformsTo(Domain::kReal));   // Z ⊂ R
  EXPECT_FALSE(Value(3.5).ConformsTo(Domain::kInt));
  EXPECT_FALSE(Value().ConformsTo(Domain::kInt));
  EXPECT_TRUE(Value("s").ConformsTo(Domain::kString));
}

TEST(ValueTest, ParsePerDomain) {
  EXPECT_EQ(*Value::Parse("42", Domain::kInt), Value(42));
  EXPECT_EQ(*Value::Parse(" -7 ", Domain::kInt), Value(-7));
  EXPECT_FALSE(Value::Parse("4.2", Domain::kInt).ok());
  EXPECT_EQ(*Value::Parse("4.25", Domain::kReal), Value(4.25));
  EXPECT_FALSE(Value::Parse("x", Domain::kReal).ok());
  EXPECT_EQ(*Value::Parse("  hi  ", Domain::kString), Value("  hi  "));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value("s").ToString(), "s");
}

TEST(SchemaTest, CreateValidates) {
  EXPECT_FALSE(RelationSchema::Create("", {{"A", Domain::kInt, false}}).ok());
  EXPECT_FALSE(RelationSchema::Create("R", {}).ok());
  EXPECT_FALSE(RelationSchema::Create("R", {{"A", Domain::kInt, false},
                                            {"A", Domain::kInt, false}})
                   .ok());
  // Measures must be numeric (paper Sec. 3).
  EXPECT_FALSE(
      RelationSchema::Create("R", {{"A", Domain::kString, true}}).ok());
}

TEST(SchemaTest, MeasureIndexes) {
  RelationSchema schema = TestSchema();
  ASSERT_EQ(schema.measure_indexes().size(), 2u);
  EXPECT_EQ(schema.measure_indexes()[0], 1u);
  EXPECT_EQ(schema.measure_indexes()[1], 2u);
  EXPECT_EQ(schema.AttributeIndex("Price"), 2u);
  EXPECT_FALSE(schema.AttributeIndex("Nope").has_value());
  EXPECT_EQ(schema.ToString(), "T(Name:String, Qty:Int*, Price:Real*)");
}

TEST(RelationTest, InsertValidatesArityAndDomains) {
  Relation relation(TestSchema());
  EXPECT_FALSE(relation.Insert({Value("a")}).ok());  // arity
  EXPECT_FALSE(
      relation.Insert({Value("a"), Value(1.5), Value(2.0)}).ok());  // Qty: Z
  auto row = relation.Insert({Value("a"), Value(1), Value(2.5)});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, 0u);
  EXPECT_EQ(relation.size(), 1u);
}

TEST(RelationTest, UpdateValueGuardsMeasures) {
  Relation relation(TestSchema());
  ASSERT_TRUE(relation.Insert({Value("a"), Value(1), Value(2.5)}).ok());
  EXPECT_TRUE(relation.UpdateValue(0, 1, Value(9)).ok());
  EXPECT_EQ(relation.At(0, 1), Value(9));
  // Non-measure attribute refused unless explicitly allowed.
  EXPECT_FALSE(relation.UpdateValue(0, 0, Value("b")).ok());
  EXPECT_TRUE(relation.UpdateValue(0, 0, Value("b"), true).ok());
  // Domain violation refused.
  EXPECT_FALSE(relation.UpdateValue(0, 1, Value(1.5)).ok());
  // Out of range.
  EXPECT_FALSE(relation.UpdateValue(5, 1, Value(2)).ok());
}

TEST(RelationTest, SelectIndexes) {
  Relation relation(TestSchema());
  ASSERT_TRUE(relation.Insert({Value("a"), Value(1), Value(2.5)}).ok());
  ASSERT_TRUE(relation.Insert({Value("b"), Value(5), Value(0.5)}).ok());
  auto hits = relation.SelectIndexes(
      [](const Tuple& t) { return t[1].AsInt() > 2; });
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(DatabaseTest, MeasureCellsEnumeration) {
  Database db;
  ASSERT_TRUE(db.AddRelation(TestSchema()).ok());
  Relation* relation = db.FindRelation("T");
  ASSERT_TRUE(relation->Insert({Value("a"), Value(1), Value(2.5)}).ok());
  ASSERT_TRUE(relation->Insert({Value("b"), Value(2), Value(3.5)}).ok());
  auto cells = db.MeasureCells();
  ASSERT_EQ(cells.size(), 4u);  // 2 rows × 2 measure attrs
  EXPECT_EQ(cells[0], (CellRef{"T", 0, 1}));
  EXPECT_EQ(cells[3], (CellRef{"T", 1, 2}));
}

TEST(DatabaseTest, CellAccessAndUpdate) {
  Database db;
  ASSERT_TRUE(db.AddRelation(TestSchema()).ok());
  ASSERT_TRUE(
      db.FindRelation("T")->Insert({Value("a"), Value(1), Value(2.5)}).ok());
  CellRef cell{"T", 0, 1};
  EXPECT_EQ(*db.ValueAt(cell), Value(1));
  ASSERT_TRUE(db.UpdateCell(cell, Value(10)).ok());
  EXPECT_EQ(*db.ValueAt(cell), Value(10));
  EXPECT_FALSE(db.ValueAt({"Missing", 0, 0}).ok());
  EXPECT_FALSE(db.ValueAt({"T", 9, 0}).ok());
}

TEST(DatabaseTest, CountDifferences) {
  Database a;
  ASSERT_TRUE(a.AddRelation(TestSchema()).ok());
  ASSERT_TRUE(
      a.FindRelation("T")->Insert({Value("a"), Value(1), Value(2.5)}).ok());
  Database b = a.Clone();
  EXPECT_EQ(*a.CountDifferences(b), 0u);
  ASSERT_TRUE(b.UpdateCell({"T", 0, 1}, Value(7)).ok());
  EXPECT_EQ(*a.CountDifferences(b), 1u);
}

TEST(DatabaseTest, DuplicateRelationRejected) {
  Database db;
  ASSERT_TRUE(db.AddRelation(TestSchema()).ok());
  EXPECT_FALSE(db.AddRelation(TestSchema()).ok());
}

TEST(CsvTest, RoundTrip) {
  Relation relation(TestSchema());
  ASSERT_TRUE(relation.Insert({Value("plain"), Value(1), Value(2.5)}).ok());
  ASSERT_TRUE(
      relation.Insert({Value("with,comma"), Value(-2), Value(0.25)}).ok());
  ASSERT_TRUE(
      relation.Insert({Value("with \"quote\""), Value(3), Value(4.0)}).ok());
  const std::string csv = WriteCsv(relation);
  auto parsed = ReadCsv(TestSchema(), csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ(parsed->At(1, 0), Value("with,comma"));
  EXPECT_EQ(parsed->At(2, 0), Value("with \"quote\""));
  EXPECT_EQ(parsed->At(1, 1), Value(-2));
  EXPECT_EQ(parsed->At(2, 2), Value(4.0));
}

TEST(CsvTest, RejectsBadHeader) {
  EXPECT_FALSE(ReadCsv(TestSchema(), "X,Y,Z\n").ok());
  EXPECT_FALSE(ReadCsv(TestSchema(), "Name,Qty\n").ok());
}

TEST(CsvTest, RejectsBadField) {
  EXPECT_FALSE(ReadCsv(TestSchema(), "Name,Qty,Price\na,notanint,2.5\n").ok());
  EXPECT_FALSE(ReadCsv(TestSchema(), "Name,Qty,Price\na,1\n").ok());
}

TEST(CsvTest, SkipsBlankLines) {
  auto parsed = ReadCsv(TestSchema(), "Name,Qty,Price\n\na,1,2.5\n\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 1u);
}

}  // namespace
}  // namespace dart::rel
