// Tests for the steadiness analysis (P3 of DESIGN.md): the running example's
// constraints are steady with the A(κ)/J(κ) sets the paper computes, and the
// constraint of Example 9 is correctly rejected.

#include <gtest/gtest.h>

#include "constraints/parser.h"
#include "constraints/steady.h"
#include "ocr/cash_budget.h"

namespace dart::cons {
namespace {

using ocr::CashBudgetFixture;

TEST(SteadyTest, RunningExampleConstraintsAreSteady) {
  auto db = CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(db.ok());
  const rel::DatabaseSchema schema = db->Schema();
  ConstraintSet constraints;
  ASSERT_TRUE(ParseConstraintProgram(
                  schema, CashBudgetFixture::ConstraintProgram(), &constraints)
                  .ok());
  ASSERT_EQ(constraints.constraints().size(), 3u);
  for (const AggregateConstraint& constraint : constraints.constraints()) {
    auto report = AnalyzeSteadiness(schema, constraints, constraint);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->steady()) << constraint.name << ": "
                                  << report->ToString();
  }
  EXPECT_TRUE(RequireAllSteady(schema, constraints).ok());
}

TEST(SteadyTest, Constraint1SetsMatchPaper) {
  // "A(Constraint 1) = {Year, Section, Type} and J(Constraint 1) = ∅."
  auto db = CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(db.ok());
  const rel::DatabaseSchema schema = db->Schema();
  ConstraintSet constraints;
  ASSERT_TRUE(ParseConstraintProgram(
                  schema, CashBudgetFixture::ConstraintProgram(), &constraints)
                  .ok());
  auto report =
      AnalyzeSteadiness(schema, constraints, constraints.constraints()[0]);
  ASSERT_TRUE(report.ok());
  std::vector<AttrRef> expected = {{"CashBudget", "Section"},
                                   {"CashBudget", "Type"},
                                   {"CashBudget", "Year"}};
  EXPECT_EQ(report->a_set, expected);
  EXPECT_TRUE(report->j_set.empty());
}

// The schema of Example 9: R1(A1, A2, A3), R2(A4, A5, A6), M_D = {A2, A4}.
rel::DatabaseSchema Example9Schema() {
  rel::DatabaseSchema schema;
  auto r1 = rel::RelationSchema::Create(
      "R1", {{"A1", rel::Domain::kString, false},
             {"A2", rel::Domain::kInt, true},
             {"A3", rel::Domain::kString, false}});
  auto r2 = rel::RelationSchema::Create(
      "R2", {{"A4", rel::Domain::kInt, true},
             {"A5", rel::Domain::kString, false},
             {"A6", rel::Domain::kInt, false}});
  DART_CHECK(r1.ok() && r2.ok());
  DART_CHECK(schema.AddRelation(*r1).ok());
  DART_CHECK(schema.AddRelation(*r2).ok());
  return schema;
}

TEST(SteadyTest, Example9ConstraintIsNotSteady) {
  const rel::DatabaseSchema schema = Example9Schema();
  ConstraintSet constraints;
  // κ: R1(x1,x2,x3), R2(x3,x4,x5) ⟹ χ(x2) ≤ K, χ(x) = sum(A6) from R2
  // where A5 = x. The paper computes A(κ) = {A5, A2} and J(κ) = {A3, A4};
  // A2 and A4 are measures, so κ is not steady.
  Status status = ParseConstraintProgram(schema, R"(
agg chi(x) := sum(A6) from R2 where A5 = x;
constraint k: R1(x1, x2, x3), R2(x3, x4, x5) => chi(x2) <= 100;
)", &constraints);
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto report =
      AnalyzeSteadiness(schema, constraints, constraints.constraints()[0]);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->steady());
  // A(κ) = {R2.A5, R1.A2} (A5 appears in the WHERE clause; x2 appears in the
  // WHERE via the parameter and corresponds to R1.A2).
  std::vector<AttrRef> expected_a = {{"R1", "A2"}, {"R2", "A5"}};
  EXPECT_EQ(report->a_set, expected_a);
  // J(κ) = {R1.A3, R2.A4} (x3 is shared between the atoms).
  std::vector<AttrRef> expected_j = {{"R1", "A3"}, {"R2", "A4"}};
  EXPECT_EQ(report->j_set, expected_j);
  // Offenders: the measures A2 and A4.
  std::vector<AttrRef> expected_offending = {{"R1", "A2"}, {"R2", "A4"}};
  EXPECT_EQ(report->offending, expected_offending);
  EXPECT_FALSE(RequireAllSteady(schema, constraints).ok());
}

TEST(SteadyTest, JoinOnNonMeasureIsSteady) {
  // Same shape as Example 9 but joining through non-measure attributes and
  // aggregating with a non-measure WHERE: steady.
  const rel::DatabaseSchema schema = Example9Schema();
  ConstraintSet constraints;
  Status status = ParseConstraintProgram(schema, R"(
agg chi(x) := sum(A4) from R2 where A5 = x;
constraint k: R1(x1, _, x3), R2(_, x3, _) => chi(x3) <= 100;
)", &constraints);
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto report =
      AnalyzeSteadiness(schema, constraints, constraints.constraints()[0]);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->steady()) << report->ToString();
}

TEST(SteadyTest, SelfJoinVariableEntersJSet) {
  // The same variable twice within one atom is an implicit self-join; if it
  // touches a measure position the constraint is not steady.
  rel::DatabaseSchema schema;
  auto r = rel::RelationSchema::Create(
      "R", {{"A", rel::Domain::kInt, true},
            {"B", rel::Domain::kInt, true},
            {"C", rel::Domain::kString, false}});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(schema.AddRelation(*r).ok());
  ConstraintSet constraints;
  Status status = ParseConstraintProgram(schema, R"(
agg s(x) := sum(B) from R where C = x;
constraint k: R(v, v, c) => s(c) <= 10;
)", &constraints);
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto report =
      AnalyzeSteadiness(schema, constraints, constraints.constraints()[0]);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->steady());  // v corresponds to measures A and B
}

TEST(SteadyTest, ConstantArgumentsNeverOffend) {
  // Aggregation calls with only constant arguments contribute only WHERE
  // attributes to A(κ).
  rel::DatabaseSchema schema;
  auto r = rel::RelationSchema::Create(
      "R", {{"K", rel::Domain::kString, false},
            {"V", rel::Domain::kInt, true}});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(schema.AddRelation(*r).ok());
  ConstraintSet constraints;
  Status status = ParseConstraintProgram(schema, R"(
agg s(x) := sum(V) from R where K = x;
constraint k: R(_, _) => s('total') <= 100;
)", &constraints);
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto report =
      AnalyzeSteadiness(schema, constraints, constraints.constraints()[0]);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->steady());
  std::vector<AttrRef> expected = {{"R", "K"}};
  EXPECT_EQ(report->a_set, expected);
}

}  // namespace
}  // namespace dart::cons
