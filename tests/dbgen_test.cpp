// Tests for the database generator: headline copying, the classification
// information deriving Type from Subsection (Sec. 6.2), constants, lenient
// skipping of unparsable rows, and mapping validation.

#include <gtest/gtest.h>

#include "dbgen/generator.h"
#include "dbgen/metadata.h"
#include "ocr/cash_budget.h"
#include "ocr/catalog.h"
#include "util/random.h"
#include "wrapper/matcher.h"

namespace dart::dbgen {
namespace {

wrap::RowPatternInstance MakeInstance(const std::string& pattern,
                                      std::vector<std::string> items) {
  wrap::RowPatternInstance instance;
  instance.pattern_name = pattern;
  instance.score = 1.0;
  for (std::string& item : items) {
    wrap::CellMatch cell;
    cell.item = std::move(item);
    cell.score = 1.0;
    instance.cells.push_back(std::move(cell));
  }
  return instance;
}

class CashBudgetGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = ocr::CashBudgetFixture::PaperExample(false);
    ASSERT_TRUE(db.ok());
    auto mapping = ocr::CashBudgetFixture::BuildMapping(*db);
    ASSERT_TRUE(mapping.ok());
    mapping_ = std::move(mapping).value();
    patterns_ = ocr::CashBudgetFixture::BuildPatterns();
  }

  RelationMapping mapping_;
  std::vector<wrap::RowPattern> patterns_;
};

TEST_F(CashBudgetGeneratorTest, ClassificationDerivesType) {
  DatabaseGenerator generator({mapping_}, patterns_);
  ASSERT_TRUE(generator.status().ok());
  auto aggregate = MakeInstance(
      "cash-budget-row", {"2003", "Receipts", "total cash receipts", "250"});
  auto detail = MakeInstance("cash-budget-row",
                             {"2003", "Receipts", "cash sales", "100"});
  auto derived = MakeInstance("cash-budget-row",
                              {"2003", "Balance", "net cash inflow", "60"});
  auto report = generator.Generate({&aggregate, &detail, &derived});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->inserted_tuples, 3u);
  EXPECT_EQ(report->skipped_rows, 0u);
  const rel::Relation* relation = report->database.FindRelation("CashBudget");
  ASSERT_NE(relation, nullptr);
  EXPECT_EQ(relation->At(0, 3), rel::Value("aggr"));
  EXPECT_EQ(relation->At(1, 3), rel::Value("det"));
  EXPECT_EQ(relation->At(2, 3), rel::Value("drv"));
  EXPECT_EQ(relation->At(0, 4), rel::Value(250));
}

TEST_F(CashBudgetGeneratorTest, ClassificationIsCaseInsensitive) {
  DatabaseGenerator generator({mapping_}, patterns_);
  auto instance = MakeInstance(
      "cash-budget-row", {"2003", "Receipts", "Total Cash Receipts", "250"});
  auto report = generator.Generate({&instance});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->inserted_tuples, 1u);
  EXPECT_EQ(report->database.FindRelation("CashBudget")->At(0, 3),
            rel::Value("aggr"));
}

TEST_F(CashBudgetGeneratorTest, UnknownItemWithoutDefaultSkips) {
  DatabaseGenerator generator({mapping_}, patterns_);
  auto instance = MakeInstance("cash-budget-row",
                               {"2003", "Receipts", "mystery line", "5"});
  auto report = generator.Generate({&instance});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->inserted_tuples, 0u);
  EXPECT_EQ(report->skipped_rows, 1u);
  ASSERT_EQ(report->warnings.size(), 1u);
  EXPECT_NE(report->warnings[0].find("mystery line"), std::string::npos);
}

TEST_F(CashBudgetGeneratorTest, UnparsableValueSkips) {
  DatabaseGenerator generator({mapping_}, patterns_);
  auto instance = MakeInstance("cash-budget-row",
                               {"2003", "Receipts", "cash sales", "1O0"});
  auto report = generator.Generate({&instance});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->inserted_tuples, 0u);
  EXPECT_EQ(report->skipped_rows, 1u);
}

TEST_F(CashBudgetGeneratorTest, ForeignPatternIgnored) {
  DatabaseGenerator generator({mapping_}, patterns_);
  auto instance =
      MakeInstance("some-other-pattern", {"2003", "Receipts", "x", "1"});
  auto report = generator.Generate({&instance});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->inserted_tuples, 0u);
  EXPECT_EQ(report->skipped_rows, 0u);  // not an error: just out of scope
}

TEST(MappingValidationTest, SourceArityMustMatch) {
  RelationMapping mapping;
  mapping.schema = ocr::CashBudgetFixture::Schema();
  mapping.sources = {};  // wrong arity
  EXPECT_FALSE(ValidateRelationMapping(mapping).ok());
}

TEST(MappingValidationTest, ClassificationIndexChecked) {
  RelationMapping mapping;
  auto schema = rel::RelationSchema::Create(
      "R", {{"A", rel::Domain::kString, false}});
  ASSERT_TRUE(schema.ok());
  mapping.schema = *schema;
  mapping.sources = {{AttributeSource::Kind::kClassification, "", 3, ""}};
  EXPECT_FALSE(ValidateRelationMapping(mapping).ok());
}

TEST(MappingValidationTest, EmptyHeadlineRejected) {
  RelationMapping mapping;
  auto schema = rel::RelationSchema::Create(
      "R", {{"A", rel::Domain::kString, false}});
  ASSERT_TRUE(schema.ok());
  mapping.schema = *schema;
  mapping.sources = {{AttributeSource::Kind::kHeadline, "", 0, ""}};
  EXPECT_FALSE(ValidateRelationMapping(mapping).ok());
}

TEST(ConstantSourceTest, ConstantFillsAttribute) {
  auto schema = rel::RelationSchema::Create(
      "R", {{"Tag", rel::Domain::kString, false},
            {"N", rel::Domain::kInt, true}});
  ASSERT_TRUE(schema.ok());
  RelationMapping mapping;
  mapping.schema = *schema;
  mapping.sources = {{AttributeSource::Kind::kConstant, "", 0, "fixed"},
                     {AttributeSource::Kind::kHeadline, "N", 0, ""}};
  wrap::RowPattern pattern;
  pattern.name = "p";
  pattern.cells = {wrap::IntegerCell("N")};
  DatabaseGenerator generator({mapping}, {pattern});
  ASSERT_TRUE(generator.status().ok()) << generator.status().ToString();
  auto instance = MakeInstance("p", {"7"});
  auto report = generator.Generate({&instance});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->inserted_tuples, 1u);
  EXPECT_EQ(report->database.FindRelation("R")->At(0, 0), rel::Value("fixed"));
  EXPECT_EQ(report->database.FindRelation("R")->At(0, 1), rel::Value(7));
}

TEST(CatalogMappingTest, DefaultClassCoversUnknownItems) {
  Rng rng(3);
  auto db = ocr::CatalogFixture::Random({}, &rng);
  ASSERT_TRUE(db.ok());
  auto mapping = ocr::CatalogFixture::BuildMapping(*db);
  ASSERT_TRUE(mapping.ok());
  DatabaseGenerator generator({*mapping}, ocr::CatalogFixture::BuildPatterns());
  ASSERT_TRUE(generator.status().ok());
  auto item = MakeInstance("catalog-row", {"electronics", "unheard of", "12"});
  auto total = MakeInstance("catalog-row", {"electronics", "TOTAL", "12"});
  auto report = generator.Generate({&item, &total});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->inserted_tuples, 2u);
  const rel::Relation* relation = report->database.FindRelation("Catalog");
  EXPECT_EQ(relation->At(0, 2), rel::Value("item"));  // default class
  EXPECT_EQ(relation->At(1, 2), rel::Value("cat"));
}

}  // namespace
}  // namespace dart::dbgen
