// Tests for the constraint-graph decomposition layer (milp/decompose.h) and
// the batch scheduler entry point: union-find component extraction, rowless
// analytic fixing, single-component passthrough, the empty (all-presolved)
// model, the SolveMilpDecomposed == SolveMilp property over random block
// models (including pin-split chains), SolveMilpBatch agreement with
// individual solves, and the engine's decomposition dispatch with
// per-component big-M retries.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "../bench/bench_util.h"
#include "constraints/parser.h"
#include "milp/branch_and_bound.h"
#include "milp/decompose.h"
#include "milp/model.h"
#include "milp/presolve.h"
#include "milp/scheduler.h"
#include "ocr/cash_budget.h"
#include "repair/engine.h"
#include "util/random.h"

namespace dart::milp {
namespace {

constexpr double kTol = 1e-6;

// --- Component extraction --------------------------------------------------

TEST(DecomposeModelTest, SplitsDisjointBlocks) {
  // Block A: {a0, a1, a2} linked by two rows. Block B: {b0, b1} by one row.
  Model model;
  const int a0 = model.AddVariable("a0", VarType::kBinary, 0, 1);
  const int a1 = model.AddVariable("a1", VarType::kBinary, 0, 1);
  const int b0 = model.AddVariable("b0", VarType::kBinary, 0, 1);
  const int a2 = model.AddVariable("a2", VarType::kBinary, 0, 1);
  const int b1 = model.AddVariable("b1", VarType::kBinary, 0, 1);
  model.AddRow("ra1", {{a0, 1.0}, {a1, 1.0}}, RowSense::kGe, 1);
  model.AddRow("rb", {{b0, 1.0}, {b1, 1.0}}, RowSense::kGe, 1);
  model.AddRow("ra2", {{a1, 1.0}, {a2, 1.0}}, RowSense::kGe, 1);
  model.SetObjective({{a0, 1.0}, {a1, 1.0}, {a2, 1.0}, {b0, 1.0}, {b1, 1.0}},
                     0, ObjectiveSense::kMinimize);

  const Decomposition dec = DecomposeModel(model);
  ASSERT_EQ(dec.num_components(), 2);
  EXPECT_EQ(dec.largest_component_vars, 3);
  // Largest first; vars ascending within each component.
  EXPECT_EQ(dec.components[0].vars, (std::vector<int>{a0, a1, a2}));
  EXPECT_EQ(dec.components[1].vars, (std::vector<int>{b0, b1}));
  EXPECT_EQ(dec.components[0].rows, (std::vector<int>{0, 2}));
  EXPECT_EQ(dec.components[1].rows, (std::vector<int>{1}));
  EXPECT_TRUE(dec.rowless_vars.empty());
  // Index maps round-trip.
  for (int c = 0; c < dec.num_components(); ++c) {
    const Component& comp = dec.components[c];
    EXPECT_EQ(comp.model.num_variables(),
              static_cast<int>(comp.vars.size()));
    EXPECT_EQ(comp.model.num_rows(), static_cast<int>(comp.rows.size()));
    for (size_t l = 0; l < comp.vars.size(); ++l) {
      EXPECT_EQ(dec.component_of_var[comp.vars[l]], c);
      EXPECT_EQ(dec.local_of_var[comp.vars[l]], static_cast<int>(l));
    }
  }
  // The decomposed optimum (one variable per covering row's block… = 2)
  // matches the whole-model solve.
  const MilpResult whole = SolveMilp(model);
  const MilpResult split = SolveMilpDecomposed(model);
  ASSERT_EQ(split.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(split.objective, whole.objective, kTol);
  EXPECT_EQ(split.num_components, 2);
  EXPECT_EQ(split.largest_component_vars, 3);
  EXPECT_TRUE(IsFeasiblePoint(model, split.point, 1e-5));
}

TEST(DecomposeModelTest, ZeroCoefficientTermsDoNotCoupleBlocks) {
  // The row "link" mentions x and y, but y's coefficients cancel on merge —
  // structurally the blocks stay independent.
  Model model;
  const int x = model.AddVariable("x", VarType::kBinary, 0, 1);
  const int y = model.AddVariable("y", VarType::kBinary, 0, 1);
  model.AddRow("link", {{x, 1.0}, {y, 1.0}, {y, -1.0}}, RowSense::kGe, 1);
  model.AddRow("own", {{y, 1.0}}, RowSense::kLe, 1);
  model.SetObjective({{x, 1.0}, {y, -1.0}}, 0, ObjectiveSense::kMinimize);
  const Decomposition dec = DecomposeModel(model);
  EXPECT_EQ(dec.num_components(), 2);
}

// --- Rowless variables -----------------------------------------------------

TEST(DecomposeModelTest, RowlessVariablesFixedByObjectiveSign) {
  Model model;
  model.AddVariable("down", VarType::kContinuous, -3, 7);   // cost +2 → lower
  model.AddVariable("up", VarType::kContinuous, -3, 7);     // cost −1 → upper
  model.AddVariable("free", VarType::kContinuous, -3, 7);   // cost 0 → 0
  model.AddVariable("intup", VarType::kInteger, -2.5, 6.5); // cost −1 → 6
  model.SetObjective({{0, 2.0}, {1, -1.0}, {3, -1.0}}, 5.0,
                     ObjectiveSense::kMinimize);
  const Decomposition dec = DecomposeModel(model);
  EXPECT_EQ(dec.num_components(), 0);
  ASSERT_EQ(dec.rowless_vars.size(), 4u);
  EXPECT_FALSE(dec.rowless_infeasible);
  EXPECT_EQ(dec.rowless_values[0], -3);
  EXPECT_EQ(dec.rowless_values[1], 7);
  EXPECT_EQ(dec.rowless_values[2], 0);
  EXPECT_EQ(dec.rowless_values[3], 6);

  const MilpResult solved = SolveMilpDecomposed(model);
  ASSERT_EQ(solved.status, MilpResult::SolveStatus::kOptimal);
  // 2·(−3) − 1·7 − 1·6 + 5 = −14.
  EXPECT_NEAR(solved.objective, -14.0, kTol);
  EXPECT_TRUE(IsFeasiblePoint(model, solved.point, 1e-5));
  // Matches the whole-model branch-and-bound.
  const MilpResult whole = SolveMilp(model);
  ASSERT_EQ(whole.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(solved.objective, whole.objective, kTol);
}

TEST(DecomposeModelTest, RowlessIntegerWithEmptyBoxIsInfeasible) {
  Model model;
  model.AddVariable("x", VarType::kInteger, 0.2, 0.8);  // no integral point
  model.SetObjective({{0, 1.0}}, 0, ObjectiveSense::kMinimize);
  const Decomposition dec = DecomposeModel(model);
  EXPECT_TRUE(dec.rowless_infeasible);
  EXPECT_EQ(SolveMilpDecomposed(model).status,
            MilpResult::SolveStatus::kInfeasible);
  EXPECT_EQ(SolveMilp(model).status, MilpResult::SolveStatus::kInfeasible);
}

TEST(DecomposeModelTest, ViolatedConstantRowIsLpInfeasible) {
  // The two y terms merge and cancel, leaving 0 >= 5.
  Model model;
  const int x = model.AddVariable("x", VarType::kBinary, 0, 1);
  const int y = model.AddVariable("y", VarType::kBinary, 0, 1);
  model.AddRow("zero", {{y, 1.0}, {y, -1.0}}, RowSense::kGe, 5);
  model.AddRow("own", {{x, 1.0}}, RowSense::kLe, 1);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  const Decomposition dec = DecomposeModel(model);
  EXPECT_TRUE(dec.constant_row_infeasible);
  EXPECT_EQ(SolveMilpDecomposed(model).status,
            MilpResult::SolveStatus::kLpRelaxationInfeasible);
  EXPECT_EQ(SolveMilp(model).status,
            MilpResult::SolveStatus::kLpRelaxationInfeasible);
}

// --- Passthrough and the empty model ---------------------------------------

TEST(DecomposeModelTest, SingleComponentPassesThroughToSolveMilp) {
  // A connected model must take the identical monolithic search (same node
  // count, same iterations), not a rebuilt copy.
  Model model;
  std::vector<LinearTerm> row, obj;
  for (int i = 0; i < 8; ++i) {
    const int v =
        model.AddVariable("b" + std::to_string(i), VarType::kBinary, 0, 1);
    row.push_back({v, static_cast<double>(2 * i + 3)});
    obj.push_back({v, 1.0});
  }
  model.AddRow("pack", row, RowSense::kEq, 24);
  model.SetObjective(obj, 0, ObjectiveSense::kMinimize);

  const Decomposition dec = DecomposeModel(model);
  ASSERT_EQ(dec.num_components(), 1);
  obs::RunContext whole_run, split_run;
  MilpOptions whole_options;
  whole_options.run = &whole_run;
  const MilpResult whole = SolveMilp(model, whole_options);
  MilpOptions split_options;
  split_options.run = &split_run;
  const MilpResult split = SolveMilpDecomposed(model, split_options);
  EXPECT_EQ(split.status, whole.status);
  const obs::MetricsSnapshot whole_snap = whole_run.metrics().Snapshot();
  const obs::MetricsSnapshot split_snap = split_run.metrics().Snapshot();
  EXPECT_EQ(split_snap.Counter("milp.nodes"), whole_snap.Counter("milp.nodes"));
  EXPECT_EQ(split_snap.Counter("milp.lp_iterations"),
            whole_snap.Counter("milp.lp_iterations"));
  EXPECT_NEAR(split.objective, whole.objective, kTol);
  EXPECT_EQ(split.num_components, 1);
  EXPECT_EQ(split.largest_component_vars, model.num_variables());
}

TEST(DecomposeModelTest, AllFixedModelReducesToEmptyDecomposition) {
  // Every variable fixed by bounds; presolve eliminates them all and the
  // decomposition of the residue is empty — the solve is pure constant.
  Model model;
  const int x = model.AddVariable("x", VarType::kInteger, 3, 3);
  const int y = model.AddVariable("y", VarType::kInteger, 4, 4);
  model.AddRow("sum", {{x, 1.0}, {y, 1.0}}, RowSense::kLe, 10);
  model.SetObjective({{x, 1.0}, {y, 2.0}}, 1.0, ObjectiveSense::kMinimize);

  const PresolveResult presolved = Presolve(model);
  ASSERT_FALSE(presolved.infeasible);
  ASSERT_EQ(presolved.reduced.num_variables(), 0);
  const Decomposition dec = DecomposeModel(presolved.reduced);
  EXPECT_EQ(dec.num_components(), 0);
  EXPECT_EQ(dec.largest_component_vars, 0);
  const MilpResult solved = SolveMilpDecomposed(presolved.reduced);
  ASSERT_EQ(solved.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_TRUE(solved.has_incumbent);
  // 3 + 2·4 + 1 folded into the reduced objective constant.
  EXPECT_NEAR(solved.objective, 12.0, kTol);
}

// --- Batch scheduler -------------------------------------------------------

TEST(SolveMilpBatchTest, EmptyBatchReturnsNothing) {
  MilpOptions options;
  options.search.num_threads = 4;
  EXPECT_TRUE(SolveMilpBatch({}, options).empty());
}

TEST(SolveMilpBatchTest, MatchesIndividualSolves) {
  // Three unrelated instances: a knapsack (maximize), an integer-infeasible
  // model, and a tiny covering problem. Batch results must agree with
  // one-at-a-time solves at every thread count.
  Model knapsack;
  {
    const int a = knapsack.AddVariable("a", VarType::kBinary, 0, 1);
    const int b = knapsack.AddVariable("b", VarType::kBinary, 0, 1);
    const int c = knapsack.AddVariable("c", VarType::kBinary, 0, 1);
    const int d = knapsack.AddVariable("d", VarType::kBinary, 0, 1);
    knapsack.AddRow("cap", {{a, 5.0}, {b, 7.0}, {c, 4.0}, {d, 3.0}},
                    RowSense::kLe, 14);
    knapsack.SetObjective({{a, 8.0}, {b, 11.0}, {c, 6.0}, {d, 4.0}}, 0,
                          ObjectiveSense::kMaximize);
  }
  Model odd;
  {
    const int x = odd.AddVariable("x", VarType::kInteger, 0, 10);
    odd.AddRow("odd", {{x, 2.0}}, RowSense::kEq, 3);
    odd.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  }
  Model cover;
  {
    const int p = cover.AddVariable("p", VarType::kBinary, 0, 1);
    const int q = cover.AddVariable("q", VarType::kBinary, 0, 1);
    cover.AddRow("need", {{p, 1.0}, {q, 1.0}}, RowSense::kGe, 1);
    cover.SetObjective({{p, 3.0}, {q, 5.0}}, 0, ObjectiveSense::kMinimize);
  }

  std::vector<BatchModel> batch(3);
  batch[0].model = &knapsack;
  batch[1].model = &odd;
  batch[2].model = &cover;
  for (int threads : {1, 4}) {
    MilpOptions options;
    options.search.num_threads = threads;
    const std::vector<MilpResult> results = SolveMilpBatch(batch, options);
    ASSERT_EQ(results.size(), 3u) << "threads=" << threads;
    ASSERT_EQ(results[0].status, MilpResult::SolveStatus::kOptimal);
    EXPECT_NEAR(results[0].objective, 21.0, kTol);
    EXPECT_TRUE(IsFeasiblePoint(knapsack, results[0].point, 1e-5));
    EXPECT_EQ(results[1].status, MilpResult::SolveStatus::kInfeasible);
    ASSERT_EQ(results[2].status, MilpResult::SolveStatus::kOptimal);
    EXPECT_NEAR(results[2].objective, 3.0, kTol);
  }
}

TEST(SolveMilpBatchTest, PerModelInitialPointSeedsEachIncumbent) {
  Model a, b;
  const int x = a.AddVariable("x", VarType::kBinary, 0, 1);
  a.AddRow("r", {{x, 1.0}}, RowSense::kGe, 1);
  a.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  const int y = b.AddVariable("y", VarType::kInteger, 0, 9);
  b.AddRow("r", {{y, 1.0}}, RowSense::kGe, 4);
  b.SetObjective({{y, 1.0}}, 0, ObjectiveSense::kMinimize);

  std::vector<BatchModel> batch(2);
  batch[0].model = &a;
  batch[0].initial_point = {1.0};
  batch[1].model = &b;
  batch[1].initial_point = {4.0};
  MilpOptions options;
  options.search.num_threads = 2;
  const std::vector<MilpResult> results = SolveMilpBatch(batch, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NEAR(results[0].objective, 1.0, kTol);
  EXPECT_NEAR(results[1].objective, 4.0, kTol);
}

// --- Property test: decomposed == whole on random block models -------------

class DecomposedAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(DecomposedAgreementTest, MatchesWholeModelSolve) {
  Rng rng(9300 + GetParam());
  // 1–4 independent blocks, each with the parallel-test recipe scaled down:
  // 3 binaries + 1 continuous, 2 random rows over the block's variables.
  const int blocks = 1 + rng.UniformInt(0, 3);
  Model model;
  std::vector<std::vector<int>> block_vars(blocks);
  for (int bl = 0; bl < blocks; ++bl) {
    for (int i = 0; i < 3; ++i) {
      block_vars[bl].push_back(model.AddVariable(
          "b" + std::to_string(bl) + "_" + std::to_string(i),
          VarType::kBinary, 0, 1));
    }
    block_vars[bl].push_back(model.AddVariable(
        "x" + std::to_string(bl), VarType::kContinuous, -5, 5));
  }
  for (int bl = 0; bl < blocks; ++bl) {
    for (int r = 0; r < 2; ++r) {
      std::vector<LinearTerm> terms;
      for (int v : block_vars[bl]) {
        if (rng.Bernoulli(0.6)) {
          terms.push_back({v, static_cast<double>(rng.UniformInt(-4, 4))});
        }
      }
      if (terms.empty()) continue;
      model.AddRow("r" + std::to_string(bl) + "_" + std::to_string(r), terms,
                   rng.Bernoulli(0.3) ? RowSense::kGe : RowSense::kLe,
                   static_cast<double>(rng.UniformInt(-6, 10)));
    }
  }
  // Sometimes chain the blocks together with coupling rows, then cut the
  // chain again with a pin (an equal-bounds variable presolve eliminates):
  // the decomposition must split exactly where the pin cuts.
  const bool chain = rng.Bernoulli(0.5);
  if (chain) {
    for (int bl = 0; bl + 1 < blocks; ++bl) {
      model.AddRow("chain" + std::to_string(bl),
                   {{block_vars[bl].back(), 1.0},
                    {block_vars[bl + 1].front(), 1.0}},
                   RowSense::kLe, 5);
    }
  }
  std::vector<LinearTerm> objective;
  for (const auto& vars : block_vars) {
    for (int v : vars) {
      objective.push_back({v, static_cast<double>(rng.UniformInt(-5, 5))});
    }
  }
  model.SetObjective(objective, 0, ObjectiveSense::kMinimize);

  const MilpResult whole = SolveMilp(model);

  // Dense-oracle cross-check: the whole-model solve must agree between the
  // default sparse LP kernel and the dense tableau oracle to 1e-6.
  {
    MilpOptions dense_options;
    dense_options.lp.kernel = LpKernel::kDense;
    const MilpResult dense = SolveMilp(model, dense_options);
    ASSERT_EQ(dense.status, whole.status) << "seed=" << GetParam();
    if (whole.status == MilpResult::SolveStatus::kOptimal) {
      EXPECT_NEAR(dense.objective, whole.objective, 1e-6)
          << "seed=" << GetParam();
    }
  }

  for (int threads : {1, 4}) {
    MilpOptions options;
    options.search.num_threads = threads;
    const MilpResult split = SolveMilpDecomposed(model, options);
    ASSERT_EQ(split.status, whole.status)
        << "seed=" << GetParam() << " threads=" << threads;
    if (whole.status == MilpResult::SolveStatus::kOptimal) {
      EXPECT_NEAR(split.objective, whole.objective, 1e-5)
          << "seed=" << GetParam() << " threads=" << threads;
      EXPECT_TRUE(IsFeasiblePoint(model, split.point, 1e-5));
    }
  }

  // Pin-split: fix the chain's middle junction variable at its solved value
  // (as the validation loop does) and compare presolve+decompose against
  // the whole pinned model.
  if (chain && blocks >= 2 &&
      whole.status == MilpResult::SolveStatus::kOptimal) {
    Model pinned = model;
    const int junction = block_vars[blocks / 2].front();
    pinned.AddRow("pin", {{junction, 1.0}}, RowSense::kEq,
                  whole.point[junction]);
    const MilpResult pinned_whole = SolveMilp(pinned);
    const PresolveResult presolved = Presolve(pinned);
    ASSERT_FALSE(presolved.infeasible);
    const MilpResult pinned_split = SolveMilpDecomposed(presolved.reduced);
    ASSERT_EQ(pinned_split.status, pinned_whole.status)
        << "seed=" << GetParam();
    if (pinned_whole.status == MilpResult::SolveStatus::kOptimal) {
      EXPECT_NEAR(pinned_split.objective, pinned_whole.objective, 1e-5)
          << "seed=" << GetParam();
      EXPECT_TRUE(IsFeasiblePoint(
          pinned, presolved.RestorePoint(pinned_split.point), 1e-5));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBlockModels, DecomposedAgreementTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace dart::milp

// --- Engine dispatch -------------------------------------------------------

namespace dart::repair {
namespace {

TEST(DecomposeEngineTest, MultiDocRepairMatchesMonolithicEngine) {
  // Four independent documents: the decomposed engine must find a repair of
  // the same cardinality as the monolithic one, and report the component
  // shape in its stats.
  const bench::Scenario scenario = bench::MakeMultiDocScenario(
      /*seed=*/42, /*docs=*/4, /*years=*/2, /*errors_per_doc=*/1);

  RepairEngineOptions mono_options;
  mono_options.milp.decomposition.use_components = false;
  RepairEngine mono(mono_options);
  auto mono_outcome =
      mono.ComputeRepair(scenario.acquired, scenario.constraints);
  ASSERT_TRUE(mono_outcome.ok()) << mono_outcome.status().ToString();

  RepairEngineOptions split_options;
  split_options.milp.search.num_threads = 4;
  RepairEngine split(split_options);
  auto split_outcome =
      split.ComputeRepair(scenario.acquired, scenario.constraints);
  ASSERT_TRUE(split_outcome.ok()) << split_outcome.status().ToString();

  EXPECT_EQ(split_outcome->repair.cardinality(),
            mono_outcome->repair.cardinality());
  EXPECT_GE(split_outcome->stats.num_components, 4);
  EXPECT_GT(split_outcome->stats.largest_component_vars, 0);
  EXPECT_EQ(mono_outcome->stats.num_components, 1);
}

TEST(DecomposeEngineTest, TranslatedMultiDocObjectiveIsErrorCount) {
  // One injected error per document ⇒ the card-minimal optimum of the
  // merged S*(AC) is exactly the document count, monolithic or decomposed,
  // with or without the integral-objective bound strengthening.
  const bench::Scenario scenario = bench::MakeMultiDocScenario(
      /*seed=*/42, /*docs=*/2, /*years=*/3, /*errors_per_doc=*/1);
  auto translation =
      TranslateToMilp(scenario.acquired, scenario.constraints);
  ASSERT_TRUE(translation.ok()) << translation.status().ToString();
  for (int threads : {1, 4}) {
    milp::MilpOptions options;
    options.search.num_threads = threads;
    options.objective_is_integral = true;
    const milp::MilpResult whole = milp::SolveMilp(translation->model, options);
    ASSERT_EQ(whole.status, milp::MilpResult::SolveStatus::kOptimal);
    EXPECT_NEAR(whole.objective, 2.0, 1e-6) << "threads=" << threads;
    const milp::MilpResult split =
        milp::SolveMilpDecomposed(translation->model, options);
    ASSERT_EQ(split.status, milp::MilpResult::SolveStatus::kOptimal);
    EXPECT_NEAR(split.objective, 2.0, 1e-6) << "threads=" << threads;
  }
}

TEST(DecomposeEngineTest, TranslatorReportsDocumentComponents) {
  const bench::Scenario scenario = bench::MakeMultiDocScenario(
      /*seed=*/7, /*docs=*/3, /*years=*/2, /*errors_per_doc=*/1);
  auto translation =
      TranslateToMilp(scenario.acquired, scenario.constraints);
  ASSERT_TRUE(translation.ok()) << translation.status().ToString();
  // Every document is (at least) one component; the per-year structure of
  // the budget usually splits further, but never across documents.
  EXPECT_GE(translation->num_cell_components, 3);
  ASSERT_EQ(translation->cell_component.size(), translation->cells.size());
  for (size_t i = 0; i < translation->cells.size(); ++i) {
    for (size_t j = 0; j < translation->cells.size(); ++j) {
      if (translation->cells[i].relation != translation->cells[j].relation) {
        EXPECT_NE(translation->cell_component[i],
                  translation->cell_component[j]);
      }
    }
  }
}

TEST(DecomposeEngineTest, PinnedCellsShowUpInPresolveStats) {
  // Pinning a repaired cell to its true value lets presolve eliminate its
  // z/y/δ triple; the engine must report that through RepairStats.
  const bench::Scenario scenario = bench::MakeMultiDocScenario(
      /*seed=*/11, /*docs=*/2, /*years=*/2, /*errors_per_doc=*/1);
  std::vector<FixedValue> pins;
  pins.push_back(FixedValue{scenario.errors[0].cell,
                            scenario.errors[0].true_value.AsReal()});

  RepairEngine engine;
  auto outcome =
      engine.ComputeRepair(scenario.acquired, scenario.constraints, pins);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(outcome->stats.presolve_variables_eliminated, 3);
  EXPECT_GE(outcome->stats.presolve_rows_removed, 1);
  EXPECT_GE(outcome->stats.num_components, 2);
}

TEST(DecomposeEngineTest, PerThreadNodesAccumulateAcrossBigMRetries) {
  // A deliberately small fixed big-M (the translator only floors it at
  // 1 + max |v| = 2 here, so fixed_value = 50 sticks) makes the first
  // attempt infeasible: each year's balance must be repaired to 1000 but
  // the z box is [-50, 50]. The engine must enlarge M ×100 and re-solve;
  // per-thread node counts must accumulate across the retries exactly like
  // `nodes` does, not be overwritten by the last attempt.
  rel::Database db;
  {
    auto schema = rel::RelationSchema::Create(
        "Ledger", {{"Year", rel::Domain::kInt, false},
                   {"Balance", rel::Domain::kInt, true}});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(db.AddRelation(*schema).ok());
    rel::Relation* ledger = db.FindRelation("Ledger");
    // Two cells per year so each year's ground row z_a + z_b = 1000 keeps a
    // branch-and-bound instance alive after presolve (a one-cell row would
    // be a singleton equality presolve chases away entirely).
    for (int64_t year : {1, 2}) {
      ASSERT_TRUE(
          ledger->Insert({rel::Value(year), rel::Value(int64_t{1})}).ok());
      ASSERT_TRUE(
          ledger->Insert({rel::Value(year), rel::Value(int64_t{2})}).ok());
    }
  }
  const char* program = R"(
agg bal(x) := sum(Balance) from Ledger where Year = x;
constraint target: Ledger(y, _) => bal(y) = 1000;
)";
  cons::ConstraintSet constraints;
  Status parsed =
      cons::ParseConstraintProgram(db.Schema(), program, &constraints);
  ASSERT_TRUE(parsed.ok()) << parsed.ToString();

  for (bool decompose : {false, true}) {
    obs::RunContext run;
    RepairEngineOptions options;
    options.run = &run;
    options.milp.decomposition.use_components = decompose;
    options.translator.big_m.fixed_value = 50;
    options.milp.search.num_threads = 2;
    RepairEngine engine(options);
    auto outcome = engine.ComputeRepair(db, constraints);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_GE(outcome->stats.bigm_retries, 1) << "decompose=" << decompose;
    EXPECT_EQ(outcome->repair.cardinality(), 2u);
    // The per-thread attribution counters must account for every node, big-M
    // retries included.
    const obs::MetricsSnapshot snap = run.metrics().Snapshot();
    int64_t per_thread_total = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind("milp.scheduler.thread.", 0) == 0 &&
          name.size() > 6 && name.compare(name.size() - 6, 6, ".nodes") == 0) {
        per_thread_total += value;
      }
    }
    EXPECT_EQ(per_thread_total, snap.Counter("milp.nodes"))
        << "decompose=" << decompose
        << " retries=" << outcome->stats.bigm_retries;
    if (decompose) {
      EXPECT_EQ(outcome->stats.num_components, 2);
    }
  }
}

}  // namespace
}  // namespace dart::repair
