// Tests for the supervised validation loop (P7 of DESIGN.md): the simulated
// operator accepts correct suggestions, rejections feed actual values back
// as constraints, the loop converges to the ground truth, and batch-limited
// examination still converges.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "constraints/eval.h"
#include "constraints/parser.h"
#include "ocr/cash_budget.h"
#include "ocr/noise.h"
#include "validation/operator.h"
#include "validation/session.h"

namespace dart::validation {
namespace {

using ocr::CashBudgetFixture;

cons::ConstraintSet ParseProgram(const rel::Database& db) {
  cons::ConstraintSet constraints;
  Status status = cons::ParseConstraintProgram(
      db.Schema(), CashBudgetFixture::ConstraintProgram(), &constraints);
  DART_CHECK_MSG(status.ok(), status.ToString());
  return constraints;
}

TEST(SimulatedOperatorTest, AcceptsAndRejects) {
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  SimulatedOperator op(&*truth);
  // Correct suggestion (250 → 220, truth holds 220).
  repair::AtomicUpdate good{{"CashBudget", 3, 4}, rel::Value(250),
                            rel::Value(220)};
  auto verdict = op.Examine(good);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->accepted);
  // Wrong suggestion (→ 230).
  repair::AtomicUpdate bad{{"CashBudget", 3, 4}, rel::Value(250),
                           rel::Value(230)};
  verdict = op.Examine(bad);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->accepted);
  EXPECT_DOUBLE_EQ(verdict->actual_value, 220);
}

TEST(ValidationSessionTest, RunningExampleConvergesInOneIteration) {
  auto truth = CashBudgetFixture::PaperExample(false);
  auto acquired = CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(truth.ok() && acquired.ok());
  cons::ConstraintSet constraints = ParseProgram(*acquired);
  SimulatedOperator op(&*truth);
  auto result = RunValidationSession(*acquired, constraints, op);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->iterations, 1u);
  EXPECT_EQ(result->examined_updates, 1u);
  EXPECT_EQ(result->accepted_updates, 1u);
  EXPECT_EQ(result->rejected_updates, 0u);
  EXPECT_EQ(*result->repaired.CountDifferences(*truth), 0u);
}

TEST(ValidationSessionTest, AlreadyConsistentInputNeedsNoExamination) {
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  cons::ConstraintSet constraints = ParseProgram(*truth);
  SimulatedOperator op(&*truth);
  auto result = RunValidationSession(*truth, constraints, op);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->examined_updates, 0u);
}

TEST(ValidationSessionTest, CompensatingErrorsNeedRejectionRound) {
  // Corrupt a detail AND the matching aggregate so the sums still balance in
  // one constraint but not the others; the card-minimal repair may pick a
  // non-true fix, which the operator rejects — forcing a second iteration
  // that must then land on the truth.
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  rel::Database acquired = truth->Clone();
  // cash sales 100 → 150 and total cash receipts 220 → 270: constraint 1
  // stays satisfied, constraints 2 (net inflow) breaks.
  ASSERT_TRUE(acquired.UpdateCell({"CashBudget", 1, 4}, rel::Value(150)).ok());
  ASSERT_TRUE(acquired.UpdateCell({"CashBudget", 3, 4}, rel::Value(270)).ok());
  cons::ConstraintSet constraints = ParseProgram(acquired);
  SimulatedOperator op(&*truth);
  auto result = RunValidationSession(acquired, constraints, op);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->converged);
  // Whatever path it took, the outcome equals the source document. (The
  // card-minimal optimum here is ambiguous — {net inflow, ending balance}
  // and {cash sales, total receipts} both have cardinality 2 — so whether a
  // rejection round occurs depends on which optimum the solver returns;
  // the loop must recover the truth either way.)
  EXPECT_EQ(*result->repaired.CountDifferences(*truth), 0u);
  EXPECT_EQ(result->examined_updates,
            result->accepted_updates + result->rejected_updates);
}

TEST(ValidationSessionTest, ProgressStreamGetsOneLinePerIteration) {
  auto truth = CashBudgetFixture::PaperExample(false);
  auto acquired = CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(truth.ok() && acquired.ok());
  cons::ConstraintSet constraints = ParseProgram(*acquired);
  SimulatedOperator op(&*truth);
  std::ostringstream progress;
  SessionOptions options;
  options.progress = &progress;
  auto result = RunValidationSession(*acquired, constraints, op, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->converged);

  const std::string text = progress.str();
  size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, result->iterations);
  // The running example converges in one iteration with one accepted
  // suggestion; the rendered counts mirror the session result.
  EXPECT_NE(text.find("[validation] iter 1 | suggested 1 | examined 1 "
                      "(accepted 1, rejected 0)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("| attempt "), std::string::npos);
}

class BatchSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchSweepTest, ConvergesToTruthUnderAnyBatchSize) {
  Rng rng(404);
  ocr::CashBudgetOptions options;
  options.num_years = 2;
  auto truth = CashBudgetFixture::Random(options, &rng);
  ASSERT_TRUE(truth.ok());
  rel::Database acquired = truth->Clone();
  auto injected = ocr::InjectMeasureErrors(&acquired, 3, &rng);
  ASSERT_TRUE(injected.ok());
  cons::ConstraintSet constraints = ParseProgram(acquired);
  SimulatedOperator op(&*truth);
  SessionOptions session;
  session.examine_batch = GetParam();
  auto result = RunValidationSession(acquired, constraints, op, session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(*result->repaired.CountDifferences(*truth), 0u);
  cons::ConsistencyChecker checker(&constraints);
  EXPECT_TRUE(*checker.IsConsistent(result->repaired));
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweepTest,
                         ::testing::Values(0, 1, 2, 5));

TEST(ValidationSessionTest, EffortIsBoundedByMeasureCells) {
  Rng rng(777);
  ocr::CashBudgetOptions options;
  options.num_years = 3;
  auto truth = CashBudgetFixture::Random(options, &rng);
  ASSERT_TRUE(truth.ok());
  rel::Database acquired = truth->Clone();
  auto injected = ocr::InjectMeasureErrors(&acquired, 4, &rng);
  ASSERT_TRUE(injected.ok());
  cons::ConstraintSet constraints = ParseProgram(acquired);
  SimulatedOperator op(&*truth);
  auto result = RunValidationSession(acquired, constraints, op);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The whole point of DART: the operator examines far fewer values than
  // the total number of measure cells.
  EXPECT_LT(result->examined_updates, acquired.MeasureCells().size());
}

}  // namespace
}  // namespace dart::validation
