// Tests for the supervised validation loop (P7 of DESIGN.md): the simulated
// operator accepts correct suggestions, rejections feed actual values back
// as constraints, the loop converges to the ground truth, and batch-limited
// examination still converges.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "constraints/eval.h"
#include "constraints/parser.h"
#include "ocr/cash_budget.h"
#include "ocr/noise.h"
#include "validation/operator.h"
#include "validation/session.h"

namespace dart::validation {
namespace {

using ocr::CashBudgetFixture;

cons::ConstraintSet ParseProgram(const rel::Database& db) {
  cons::ConstraintSet constraints;
  Status status = cons::ParseConstraintProgram(
      db.Schema(), CashBudgetFixture::ConstraintProgram(), &constraints);
  DART_CHECK_MSG(status.ok(), status.ToString());
  return constraints;
}

TEST(SimulatedOperatorTest, AcceptsAndRejects) {
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  SimulatedOperator op(&*truth);
  // Correct suggestion (250 → 220, truth holds 220).
  repair::AtomicUpdate good{{"CashBudget", 3, 4}, rel::Value(250),
                            rel::Value(220)};
  auto verdict = op.Examine(good);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->accepted);
  // Wrong suggestion (→ 230).
  repair::AtomicUpdate bad{{"CashBudget", 3, 4}, rel::Value(250),
                           rel::Value(230)};
  verdict = op.Examine(bad);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->accepted);
  EXPECT_DOUBLE_EQ(verdict->actual_value, 220);
}

TEST(ValidationSessionTest, RunningExampleConvergesInOneIteration) {
  auto truth = CashBudgetFixture::PaperExample(false);
  auto acquired = CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(truth.ok() && acquired.ok());
  cons::ConstraintSet constraints = ParseProgram(*acquired);
  SimulatedOperator op(&*truth);
  auto result = RunValidationSession(*acquired, constraints, op);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->iterations, 1u);
  EXPECT_EQ(result->examined_updates, 1u);
  EXPECT_EQ(result->accepted_updates, 1u);
  EXPECT_EQ(result->rejected_updates, 0u);
  EXPECT_EQ(*result->repaired.CountDifferences(*truth), 0u);
}

TEST(ValidationSessionTest, AlreadyConsistentInputNeedsNoExamination) {
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  cons::ConstraintSet constraints = ParseProgram(*truth);
  SimulatedOperator op(&*truth);
  auto result = RunValidationSession(*truth, constraints, op);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->examined_updates, 0u);
}

TEST(ValidationSessionTest, CompensatingErrorsNeedRejectionRound) {
  // Corrupt a detail AND the matching aggregate so the sums still balance in
  // one constraint but not the others; the card-minimal repair may pick a
  // non-true fix, which the operator rejects — forcing a second iteration
  // that must then land on the truth.
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  rel::Database acquired = truth->Clone();
  // cash sales 100 → 150 and total cash receipts 220 → 270: constraint 1
  // stays satisfied, constraints 2 (net inflow) breaks.
  ASSERT_TRUE(acquired.UpdateCell({"CashBudget", 1, 4}, rel::Value(150)).ok());
  ASSERT_TRUE(acquired.UpdateCell({"CashBudget", 3, 4}, rel::Value(270)).ok());
  cons::ConstraintSet constraints = ParseProgram(acquired);
  SimulatedOperator op(&*truth);
  auto result = RunValidationSession(acquired, constraints, op);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->converged);
  // Whatever path it took, the outcome equals the source document. (The
  // card-minimal optimum here is ambiguous — {net inflow, ending balance}
  // and {cash sales, total receipts} both have cardinality 2 — so whether a
  // rejection round occurs depends on which optimum the solver returns;
  // the loop must recover the truth either way.)
  EXPECT_EQ(*result->repaired.CountDifferences(*truth), 0u);
  EXPECT_EQ(result->examined_updates,
            result->accepted_updates + result->rejected_updates);
}

TEST(ValidationSessionTest, ProgressStreamGetsOneLinePerIteration) {
  auto truth = CashBudgetFixture::PaperExample(false);
  auto acquired = CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(truth.ok() && acquired.ok());
  cons::ConstraintSet constraints = ParseProgram(*acquired);
  SimulatedOperator op(&*truth);
  std::ostringstream progress;
  OstreamProgressSink progress_sink(&progress);
  SessionOptions options;
  options.progress = &progress_sink;
  auto result = RunValidationSession(*acquired, constraints, op, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->converged);

  const std::string text = progress.str();
  size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, result->iterations);
  // The running example converges in one iteration with one accepted
  // suggestion; the rendered counts mirror the session result.
  EXPECT_NE(text.find("[validation] iter 1 | suggested 1 | examined 1 "
                      "(accepted 1, rejected 0)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("| attempt "), std::string::npos);
}

class BatchSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchSweepTest, ConvergesToTruthUnderAnyBatchSize) {
  Rng rng(404);
  ocr::CashBudgetOptions options;
  options.num_years = 2;
  auto truth = CashBudgetFixture::Random(options, &rng);
  ASSERT_TRUE(truth.ok());
  rel::Database acquired = truth->Clone();
  auto injected = ocr::InjectMeasureErrors(&acquired, 3, &rng);
  ASSERT_TRUE(injected.ok());
  cons::ConstraintSet constraints = ParseProgram(acquired);
  SimulatedOperator op(&*truth);
  SessionOptions session;
  session.examine_batch = GetParam();
  auto result = RunValidationSession(acquired, constraints, op, session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(*result->repaired.CountDifferences(*truth), 0u);
  cons::ConsistencyChecker checker(&constraints);
  EXPECT_TRUE(*checker.IsConsistent(result->repaired));
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweepTest,
                         ::testing::Values(0, 1, 2, 5));

TEST(ValidationSessionTest, RejectionActualValueSurvivesEmptyRepairPath) {
  // Regression for a silent-corruption path in the convergence handling:
  // ExtractRepair drops updates below a *relative* 1e-6 tolerance, so at
  // millions-scale magnitudes a repair that moves a cell by a few units
  // extracts as empty — and the `already_consistent || repair.empty()` exit
  // used to return the acquired database verbatim, discarding actual source
  // values the operator had supplied on rejection. The final database must
  // always reflect the operator's word.
  //
  // Scenario: two cells of 3,000,000 whose true values are 2,999,998 each,
  // under sum = 5,999,996. Iteration 1 suggests a single-cell change by 4
  // (extractable: 4 > 1e-6·3e6 = 3) which the operator rejects, pinning that
  // cell to 2,999,998. Iteration 2's optimal repair then moves both cells by
  // 2 — below the relative tolerance — so the extracted repair is empty and
  // the loop converges. verify_result must be off for this to be silent
  // (the engine's own post-check would reject the empty repair first).
  rel::Database truth;
  {
    auto schema = rel::RelationSchema::Create(
        "Books", {{"Grp", rel::Domain::kInt, false},
                  {"Val", rel::Domain::kInt, true}});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(truth.AddRelation(*schema).ok());
    rel::Relation* books = truth.FindRelation("Books");
    ASSERT_TRUE(books
                    ->Insert({rel::Value(int64_t{1}),
                              rel::Value(int64_t{2999998})})
                    .ok());
    ASSERT_TRUE(books
                    ->Insert({rel::Value(int64_t{1}),
                              rel::Value(int64_t{2999998})})
                    .ok());
  }
  rel::Database acquired = truth.Clone();
  ASSERT_TRUE(
      acquired.UpdateCell({"Books", 0, 1}, rel::Value(int64_t{3000000})).ok());
  ASSERT_TRUE(
      acquired.UpdateCell({"Books", 1, 1}, rel::Value(int64_t{3000000})).ok());
  const char* program = R"(
agg tot(x) := sum(Val) from Books where Grp = x;
constraint balance: Books(x, _) => tot(x) = 5999996;
)";
  cons::ConstraintSet constraints;
  Status parsed =
      cons::ParseConstraintProgram(acquired.Schema(), program, &constraints);
  ASSERT_TRUE(parsed.ok()) << parsed.ToString();
  SimulatedOperator op(&truth);

  for (bool incremental : {false, true}) {
    SessionOptions options;
    options.use_incremental = incremental;
    options.engine.verify_result = false;
    auto result = RunValidationSession(acquired, constraints, op, options);
    ASSERT_TRUE(result.ok()) << "incremental=" << incremental << ": "
                             << result.status().ToString();
    EXPECT_TRUE(result->converged);
    ASSERT_GE(result->rejected_updates, 1u) << "incremental=" << incremental;
    // The rejected cell's actual source value (2,999,998) must be in the
    // final database even though the converging repair extracted as empty.
    EXPECT_GE(*result->repaired.CountDifferences(acquired), 1u)
        << "incremental=" << incremental;
    bool actual_value_present = false;
    for (size_t row = 0; row < 2; ++row) {
      auto value = result->repaired.ValueAt({"Books", row, 1});
      ASSERT_TRUE(value.ok());
      if (*value == rel::Value(int64_t{2999998})) actual_value_present = true;
    }
    EXPECT_TRUE(actual_value_present) << "incremental=" << incremental;
  }
}

TEST(ValidationSessionTest, EffortIsBoundedByMeasureCells) {
  Rng rng(777);
  ocr::CashBudgetOptions options;
  options.num_years = 3;
  auto truth = CashBudgetFixture::Random(options, &rng);
  ASSERT_TRUE(truth.ok());
  rel::Database acquired = truth->Clone();
  auto injected = ocr::InjectMeasureErrors(&acquired, 4, &rng);
  ASSERT_TRUE(injected.ok());
  cons::ConstraintSet constraints = ParseProgram(acquired);
  SimulatedOperator op(&*truth);
  auto result = RunValidationSession(acquired, constraints, op);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The whole point of DART: the operator examines far fewer values than
  // the total number of measure cells.
  EXPECT_LT(result->examined_updates, acquired.MeasureCells().size());
}

}  // namespace
}  // namespace dart::validation
