// Tests for the dart::obs observability layer: the sharded metrics registry
// under write contention, snapshot deltas, the span tree produced by a
// decomposed batch solve across scheduler threads, the no-op null-context
// path, the JSON run report (round-tripped through a minimal in-test
// parser), the engine's registry-published search counters, the bounded
// trace ring under overflow (head + latency-biased tail sampling), and the
// streaming PeriodicExporter lifecycle with its pluggable in-process sinks.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_util.h"
#include "milp/branch_and_bound.h"
#include "milp/decompose.h"
#include "milp/model.h"
#include "obs/context.h"
#include "obs/exporter.h"
#include "obs/registry.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "repair/engine.h"

namespace dart::obs {
namespace {

// --- Registry --------------------------------------------------------------

TEST(RegistryTest, CountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.AddCounter("a");
  registry.AddCounter("a", 4);
  registry.AddCounter("b", 0);  // registered, still zero
  registry.SetGauge("g", 2.5);
  registry.SetGauge("g", 7.0);  // last write wins
  registry.Observe("h", 0.25);
  registry.Observe("h", 0.75);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Counter("a"), 5);
  EXPECT_EQ(snap.Counter("b"), 0);
  EXPECT_EQ(snap.Counter("never"), 0);
  EXPECT_EQ(snap.GaugeOr("g", -1), 7.0);
  EXPECT_EQ(snap.GaugeOr("never", -1), -1);
  ASSERT_EQ(snap.histograms.count("h"), 1u);
  const HistogramSnapshot& h = snap.histograms.at("h");
  EXPECT_EQ(h.count, 2);
  EXPECT_DOUBLE_EQ(h.sum, 1.0);
  EXPECT_DOUBLE_EQ(h.min, 0.25);
  EXPECT_DOUBLE_EQ(h.max, 0.75);
  int64_t bucket_total = 0;
  for (int64_t b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count);
}

TEST(RegistryTest, MergesThreadShardsUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  MetricsRegistry registry;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      const std::string mine = "thread." + std::to_string(t);
      for (int i = 0; i < kIncrements; ++i) {
        registry.AddCounter("shared");
        registry.AddCounter(mine);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent snapshots must be safe and never overshoot the final total.
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot mid = registry.Snapshot();
    EXPECT_LE(mid.Counter("shared"),
              static_cast<int64_t>(kThreads) * kIncrements);
  }
  for (std::thread& thread : threads) thread.join();

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Counter("shared"),
            static_cast<int64_t>(kThreads) * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.Counter("thread." + std::to_string(t)), kIncrements);
  }
}

TEST(RegistryTest, DeltaSinceAttributesOnlyNewActivity) {
  MetricsRegistry registry;
  registry.AddCounter("c", 10);
  registry.AddCounter("only_before", 3);
  registry.SetGauge("g", 1.0);
  registry.Observe("h", 2.0);
  const MetricsSnapshot base = registry.Snapshot();

  registry.AddCounter("c", 5);
  registry.AddCounter("only_after", 2);
  registry.SetGauge("g", 9.0);
  registry.Observe("h", 4.0);
  const MetricsSnapshot delta = registry.Snapshot().DeltaSince(base);

  EXPECT_EQ(delta.Counter("c"), 5);
  EXPECT_EQ(delta.Counter("only_after"), 2);
  // Zero-delta names stay present (counters are monotone), so callers can
  // distinguish "untouched" from "unknown".
  ASSERT_EQ(delta.counters.count("only_before"), 1u);
  EXPECT_EQ(delta.counters.at("only_before"), 0);
  // Gauges are last-write-wins: the delta carries the current value.
  EXPECT_EQ(delta.GaugeOr("g", -1), 9.0);
  ASSERT_EQ(delta.histograms.count("h"), 1u);
  EXPECT_EQ(delta.histograms.at("h").count, 1);
  EXPECT_DOUBLE_EQ(delta.histograms.at("h").sum, 4.0);
}

// --- Labeled series --------------------------------------------------------

TEST(RegistryTest, LabeledNameEncodingAndParsing) {
  EXPECT_EQ(LabeledName("serve.requests", {}), "serve.requests");
  EXPECT_EQ(LabeledName("serve.requests", {{"tenant", "alpha"}}),
            "serve.requests{tenant=alpha}");
  EXPECT_EQ(LabeledName("m", {{"a", "1"}, {"b", "2"}}), "m{a=1,b=2}");
  // Characters outside [A-Za-z0-9_.:-] are sanitized to '_' on both sides
  // of the '=', keeping the encoding parseable without escapes.
  EXPECT_EQ(LabeledName("m", {{"te nant", "a=b,c{d}"}}),
            "m{te_nant=a_b_c_d_}");

  SeriesName bare = ParseSeriesName("serve.requests");
  EXPECT_EQ(bare.base, "serve.requests");
  EXPECT_TRUE(bare.labels.empty());

  SeriesName labeled = ParseSeriesName("m{a=1,b=2}");
  EXPECT_EQ(labeled.base, "m");
  ASSERT_EQ(labeled.labels.size(), 2u);
  EXPECT_EQ(labeled.labels[0].first, "a");
  EXPECT_EQ(labeled.labels[0].second, "1");
  EXPECT_EQ(labeled.labels[1].first, "b");
  EXPECT_EQ(labeled.labels[1].second, "2");

  // A malformed suffix comes back as the whole key, never a crash.
  EXPECT_EQ(ParseSeriesName("m{a=1").base, "m{a=1");
  EXPECT_TRUE(ParseSeriesName("m{a=1").labels.empty());
  EXPECT_EQ(ParseSeriesName("m{}").base, "m");
  EXPECT_TRUE(ParseSeriesName("m{}").labels.empty());
}

TEST(RegistryTest, LabeledCountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.AddCounter("req", {{"tenant", "a"}}, 3);
  registry.AddCounter("req", {{"tenant", "b"}});
  registry.AddCounter("req", 10);  // the unlabeled sibling is distinct
  registry.SetGauge("depth", {{"tenant", "a"}}, 4.0);
  registry.Observe("lat", {{"tenant", "a"}}, 0.5);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Counter("req", {{"tenant", "a"}}), 3);
  EXPECT_EQ(snap.Counter("req", {{"tenant", "b"}}), 1);
  EXPECT_EQ(snap.Counter("req"), 10);
  EXPECT_EQ(snap.Counter("req", {{"tenant", "never"}}), 0);
  EXPECT_EQ(snap.GaugeOr("depth", {{"tenant", "a"}}, -1), 4.0);
  EXPECT_EQ(snap.GaugeOr("depth", {{"tenant", "b"}}, -1), -1);
  EXPECT_EQ(snap.histograms.count("lat{tenant=a}"), 1u);
}

// The ISSUE-10 contention contract: 8 threads hammer the SAME counter name
// under 4 distinct tenant labels (2 threads per tenant), every increment
// also counted globally — per-label totals must be exact and the global
// series must equal the labeled sum (run under tsan_smoke/asan_smoke).
TEST(RegistryTest, LabeledSeriesExactUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  const std::vector<std::string> kTenants = {"alpha", "bravo", "charlie",
                                             "delta"};
  MetricsRegistry registry;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &go, &kTenants, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      const std::string& tenant = kTenants[static_cast<size_t>(t) % 4];
      // The serving idiom: precompute the encoded key once, then pay only
      // the unlabeled lock-free path per increment.
      const std::string series =
          LabeledName("serve.requests", {{"tenant", tenant}});
      for (int i = 0; i < kIncrements; ++i) {
        registry.AddCounter(series);
        registry.AddCounter("serve.requests");
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();

  const MetricsSnapshot snap = registry.Snapshot();
  int64_t labeled_sum = 0;
  for (const std::string& tenant : kTenants) {
    const int64_t value = snap.Counter("serve.requests", {{"tenant", tenant}});
    EXPECT_EQ(value, 2 * kIncrements) << tenant;
    labeled_sum += value;
  }
  EXPECT_EQ(snap.Counter("serve.requests"),
            static_cast<int64_t>(kThreads) * kIncrements);
  EXPECT_EQ(labeled_sum, snap.Counter("serve.requests"));
}

// --- Histogram buckets and quantiles ---------------------------------------

TEST(RegistryTest, HistogramBucketBoundsAndQuantiles) {
  EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(10), 1024e-6);
  EXPECT_TRUE(std::isinf(HistogramBucketUpperBound(kHistogramBuckets - 1)));

  std::array<int64_t, kHistogramBuckets> buckets{};
  EXPECT_EQ(HistogramQuantileFromBuckets(buckets, 0, 0.99), 0);
  buckets[3] = 90;   // (4, 8] µs
  buckets[10] = 10;  // (512, 1024] µs
  const double p50 = HistogramQuantileFromBuckets(buckets, 100, 0.50);
  const double p99 = HistogramQuantileFromBuckets(buckets, 100, 0.99);
  EXPECT_DOUBLE_EQ(p50, HistogramBucketUpperBound(3));
  EXPECT_DOUBLE_EQ(p99, HistogramBucketUpperBound(10));
  EXPECT_LE(p50, p99);  // monotone by construction

  // The open last bucket reports a finite estimate.
  std::array<int64_t, kHistogramBuckets> open{};
  open[kHistogramBuckets - 1] = 5;
  EXPECT_TRUE(std::isfinite(HistogramQuantileFromBuckets(open, 5, 0.99)));

  // HistogramSnapshot::Quantile clamps into the observed [min, max].
  MetricsRegistry registry;
  registry.Observe("h", 0.003);
  registry.Observe("h", 0.005);
  const HistogramSnapshot h = registry.Snapshot().histograms.at("h");
  const double q99 = h.Quantile(0.99);
  EXPECT_GE(q99, h.min);
  EXPECT_LE(q99, h.max);
  EXPECT_LE(h.Quantile(0.5), q99);
}

// --- Prometheus exposition -------------------------------------------------

TEST(ReportTest, PrometheusLabeledFamiliesAndHistogramBuckets) {
  MetricsRegistry registry;
  registry.AddCounter("serve.completed", 7);
  registry.AddCounter("serve.completed", {{"tenant", "a"}}, 4);
  registry.AddCounter("serve.completed", {{"tenant", "b"}}, 3);
  registry.SetGauge("serve.queue_depth", {{"tenant", "a"}}, 2.0);
  registry.Observe("serve.request_seconds", 3e-6);   // bucket 2: (2, 4] µs
  registry.Observe("serve.request_seconds", 3e-6);
  registry.Observe("serve.request_seconds", 100e-6);  // bucket 7: (64, 128] µs
  registry.Observe("serve.request_seconds", {{"tenant", "a"}}, 3e-6);

  const std::string text = PrometheusText(registry.Snapshot());

  // One TYPE line per family; labeled and unlabeled samples share it.
  EXPECT_EQ(text.find("# TYPE serve_completed counter"),
            text.rfind("# TYPE serve_completed counter"));
  EXPECT_NE(text.find("serve_completed 7\n"), std::string::npos) << text;
  EXPECT_NE(text.find("serve_completed{tenant=\"a\"} 4\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_completed{tenant=\"b\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("serve_queue_depth{tenant=\"a\"} 2\n"),
            std::string::npos);

  // True histogram exposition: cumulative buckets at the power-of-two
  // bounds, a +Inf bucket equal to the count, then _sum and _count.
  EXPECT_NE(text.find("# TYPE serve_request_seconds histogram"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE serve_request_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("serve_request_seconds_bucket{le=\"2e-06\"} 0\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_request_seconds_bucket{le=\"4e-06\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_request_seconds_bucket{le=\"0.000128\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_request_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_request_seconds_count 3\n"), std::string::npos);
  // The labeled histogram's buckets merge the tenant label with le.
  EXPECT_NE(text.find(
                "serve_request_seconds_bucket{tenant=\"a\",le=\"4e-06\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_request_seconds_count{tenant=\"a\"} 1\n"),
            std::string::npos);
}

// --- SLO tracker -----------------------------------------------------------

TEST(SloTest, ComputesBurnComplianceAndBudget) {
  MetricsRegistry registry;
  SloTracker tracker;

  SloSpec met;
  met.latency_objective_seconds = 10.0;  // generous: everything under it
  met.availability_objective = 0.5;
  tracker.Declare("fast", met);

  SloSpec breached;
  breached.latency_objective_seconds = 1e-6;  // unattainable
  breached.availability_objective = 0.999;
  tracker.Declare("slow", breached);

  for (int i = 0; i < 100; ++i) {
    registry.Observe("serve.request_seconds", {{"tenant", "fast"}}, 1e-3);
    registry.Observe("serve.request_seconds", {{"tenant", "slow"}}, 1e-3);
    registry.AddCounter("serve.accepted", {{"tenant", "fast"}});
    registry.AddCounter("serve.accepted", {{"tenant", "slow"}});
  }
  registry.AddCounter("serve.rejected", {{"tenant", "slow"}}, 25);
  tracker.Ingest(registry.Snapshot());

  const std::vector<SloStatus> statuses = tracker.Status();
  ASSERT_EQ(statuses.size(), 2u);
  const SloStatus& fast = statuses[0];  // sorted by tenant name
  const SloStatus& slow = statuses[1];
  ASSERT_EQ(fast.tenant, "fast");
  ASSERT_EQ(slow.tenant, "slow");

  EXPECT_TRUE(fast.latency.enabled);
  EXPECT_TRUE(fast.latency.compliant);
  EXPECT_EQ(fast.latency.events_total, 100);
  EXPECT_EQ(fast.latency.events_bad, 0);
  EXPECT_EQ(fast.latency.burn, 0);
  EXPECT_TRUE(fast.availability.compliant);
  EXPECT_DOUBLE_EQ(fast.budget_remaining, 1.0);

  EXPECT_FALSE(slow.latency.compliant);
  EXPECT_EQ(slow.latency.events_bad, 100);  // every request over 1 µs
  // bad_fraction 1.0 against an allowed fraction of 1 - p99 = 0.01.
  EXPECT_NEAR(slow.latency.burn, 100.0, 1e-9);
  // availability: 100 good / 25 bad = 0.8 observed against 0.999 —
  // bad_fraction 0.2 / allowed 0.001 = 200, the larger burn.
  EXPECT_FALSE(slow.availability.compliant);
  EXPECT_NEAR(slow.availability.observed, 0.8, 1e-12);
  EXPECT_NEAR(slow.availability.burn, 200.0, 1e-6);
  EXPECT_NEAR(slow.budget_remaining, 1.0 - 200.0, 1e-6);
}

TEST(SloTest, RollingWindowForgetsOldIntervals) {
  MetricsRegistry registry;
  SloTracker tracker;
  SloSpec spec;
  spec.latency_objective_seconds = 1.0;
  spec.window_ticks = 2;
  tracker.Declare("t", spec);

  // Tick 1: 10 slow observations (over the 1 s objective).
  for (int i = 0; i < 10; ++i) {
    registry.Observe("serve.request_seconds", {{"tenant", "t"}}, 2.0);
  }
  tracker.Ingest(registry.Snapshot());
  EXPECT_FALSE(tracker.Status()[0].latency.compliant);

  // Ticks 2 and 3: fast traffic only. The window (2 ticks) forgets tick 1.
  for (int tick = 0; tick < 2; ++tick) {
    for (int i = 0; i < 10; ++i) {
      registry.Observe("serve.request_seconds", {{"tenant", "t"}}, 1e-3);
    }
    tracker.Ingest(registry.Snapshot());
  }
  const SloStatus status = tracker.Status()[0];
  EXPECT_EQ(status.window_ticks_used, 2);
  EXPECT_EQ(status.latency.events_total, 20);
  EXPECT_EQ(status.latency.events_bad, 0);
  EXPECT_TRUE(status.latency.compliant);
  EXPECT_DOUBLE_EQ(status.budget_remaining, 1.0);
}

TEST(SloTest, FeedsFromExporterTicks) {
  RunContext run;
  SloTracker tracker;
  SloSpec spec;
  spec.latency_objective_seconds = 10.0;
  spec.availability_objective = 0.5;
  tracker.Declare("t", spec);

  ExporterOptions options;
  options.interval = std::chrono::milliseconds(5);
  options.sinks = {&tracker};
  PeriodicExporter exporter(&run, options);
  ASSERT_TRUE(exporter.Start().ok());
  for (int i = 0; i < 20; ++i) {
    run.metrics().Observe("serve.request_seconds", {{"tenant", "t"}}, 1e-3);
    run.metrics().AddCounter("serve.accepted", {{"tenant", "t"}});
  }
  ASSERT_TRUE(exporter.Stop().ok());  // final flush tick always ingests

  const SloStatus status = tracker.Status()[0];
  EXPECT_GE(status.window_ticks_used, 1);
  EXPECT_EQ(status.latency.events_total, 20);
  EXPECT_TRUE(status.latency.compliant);
  EXPECT_TRUE(status.availability.compliant);
  EXPECT_EQ(status.availability.events_total, 20);
}

// --- Spans & null context --------------------------------------------------

TEST(SpanTest, NestsOnThreadAndSupportsExplicitParents) {
  RunContext run;
  EXPECT_EQ(CurrentSpanId(&run), 0);
  int64_t outer_id = 0, inner_id = 0;
  {
    Span outer(&run, "outer");
    outer_id = outer.id();
    EXPECT_EQ(CurrentSpanId(&run), outer_id);
    {
      Span inner(&run, "inner");
      inner_id = inner.id();
      EXPECT_EQ(CurrentSpanId(&run), inner_id);
    }
    EXPECT_EQ(CurrentSpanId(&run), outer_id);

    // Explicit parent, as used across threads: parent under `outer` from a
    // thread that has no current span of its own.
    std::thread worker([&run, outer_id] {
      EXPECT_EQ(CurrentSpanId(&run), 0);
      Span cross(&run, "cross", outer_id);
      EXPECT_EQ(CurrentSpanId(&run), cross.id());
    });
    worker.join();
  }
  EXPECT_EQ(CurrentSpanId(&run), 0);

  const std::vector<SpanRecord> spans = run.trace().Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& span : spans) {
    EXPECT_LT(span.parent, span.id);  // parents begin before children
    EXPECT_GE(span.duration_ns, 0);   // all closed
    by_name[span.name] = span;
  }
  EXPECT_EQ(by_name.at("outer").parent, 0);
  EXPECT_EQ(by_name.at("inner").parent, outer_id);
  EXPECT_EQ(by_name.at("cross").parent, outer_id);
  EXPECT_EQ(by_name.at("inner").id, inner_id);
}

TEST(SpanTest, EndIsIdempotentAndPopsEarly) {
  RunContext run;
  Span outer(&run, "outer");
  Span inner(&run, "inner");
  inner.End();
  EXPECT_EQ(CurrentSpanId(&run), outer.id());
  inner.End();  // second End is a no-op
  EXPECT_EQ(CurrentSpanId(&run), outer.id());
}

TEST(NullContextTest, SinkIsSafeAndCheap) {
  // The entire instrumentation surface must be callable with run == nullptr
  // — this is the default for every options struct, so the uninstrumented
  // pipeline pays one branch per site and nothing else.
  EXPECT_EQ(CurrentSpanId(nullptr), 0);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000000; ++i) {
    Count(nullptr, "c");
    SetGauge(nullptr, "g", 1.0);
    Observe(nullptr, "h", 1.0);
    Count(nullptr, "c", {{"tenant", "t"}});
    SetGauge(nullptr, "g", {{"tenant", "t"}}, 1.0);
    Observe(nullptr, "h", {{"tenant", "t"}}, 1.0);
    Span span(nullptr, "s");
    EXPECT_EQ(span.id(), 0);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(CurrentSpanId(nullptr), 0);
  // 4M no-op calls in generous time: catches an accidental allocation or
  // lock on the null path without being load-sensitive.
  EXPECT_LT(seconds, 2.0);
}

// --- Span tree across the decomposed batch solver --------------------------

// Two independent blocks, so the decomposed solve runs a 2-instance batch on
// the work-stealing scheduler.
milp::Model TwoBlockModel() {
  milp::Model model;
  const int a0 = model.AddVariable("a0", milp::VarType::kBinary, 0, 1);
  const int a1 = model.AddVariable("a1", milp::VarType::kBinary, 0, 1);
  const int b0 = model.AddVariable("b0", milp::VarType::kBinary, 0, 1);
  const int b1 = model.AddVariable("b1", milp::VarType::kBinary, 0, 1);
  model.AddRow("ra", {{a0, 1.0}, {a1, 1.0}}, milp::RowSense::kGe, 1);
  model.AddRow("rb", {{b0, 1.0}, {b1, 1.0}}, milp::RowSense::kGe, 1);
  model.SetObjective({{a0, 1.0}, {a1, 1.0}, {b0, 1.0}, {b1, 1.0}}, 0,
                     milp::ObjectiveSense::kMinimize);
  return model;
}

TEST(TraceTest, DecomposedBatchSolveFormsWellNestedSpanTree) {
  RunContext run;
  milp::MilpOptions options;
  options.objective_is_integral = true;
  options.search.num_threads = 4;
  options.decomposition.use_presolve = false;  // keep both components alive
  options.run = &run;
  const milp::Model model = TwoBlockModel();
  const milp::MilpResult result = milp::SolveMilpDecomposed(model, options);
  ASSERT_EQ(result.status, milp::MilpResult::SolveStatus::kOptimal);
  ASSERT_EQ(result.num_components, 2);

  const std::vector<SpanRecord> spans = run.trace().Snapshot();
  int64_t batch_id = 0;
  std::set<int64_t> worker_ids;
  for (const SpanRecord& span : spans) {
    EXPECT_LT(span.parent, span.id);
    EXPECT_GE(span.duration_ns, 0);
    if (span.name == "milp.batch") {
      EXPECT_EQ(batch_id, 0) << "exactly one batch span expected";
      batch_id = span.id;
    }
  }
  ASSERT_NE(batch_id, 0);
  for (const SpanRecord& span : spans) {
    if (span.name == "milp.worker") {
      // Worker threads have no span stack; they parent to the batch span
      // through the explicit-parent Span constructor.
      EXPECT_EQ(span.parent, batch_id);
      worker_ids.insert(span.id);
    }
  }
  EXPECT_FALSE(worker_ids.empty());

  // Single-publish invariant: each component's result is published exactly
  // once, and the live per-instance counters the workers emit add up to the
  // batch totals.
  const MetricsSnapshot snap = run.metrics().Snapshot();
  EXPECT_EQ(snap.Counter("milp.solves"), 2);
  EXPECT_GT(snap.Counter("milp.nodes"), 0);
  EXPECT_GT(snap.Counter("milp.lp_iterations"), 0);
  EXPECT_EQ(snap.Counter("milp.instance.0.nodes") +
                snap.Counter("milp.instance.1.nodes"),
            snap.Counter("milp.nodes"));
  EXPECT_EQ(snap.Counter("milp.instance.0.lp_iterations") +
                snap.Counter("milp.instance.1.lp_iterations"),
            snap.Counter("milp.lp_iterations"));
  EXPECT_EQ(snap.GaugeOr("milp.components", -1), 2.0);
  EXPECT_EQ(snap.GaugeOr("milp.largest_component_vars", -1), 2.0);
}

TEST(TraceTest, SerialBatchNestsSearchUnderInstanceSpans) {
  // The serial batch path (num_threads == 1) solves the components one after
  // another: a milp.instance span per component, each with the component's
  // milp.search span as a child.
  RunContext run;
  milp::MilpOptions options;
  options.objective_is_integral = true;
  options.search.num_threads = 1;
  options.decomposition.use_presolve = false;
  options.run = &run;
  const milp::Model model = TwoBlockModel();
  const milp::MilpResult result = milp::SolveMilpDecomposed(model, options);
  ASSERT_EQ(result.status, milp::MilpResult::SolveStatus::kOptimal);
  ASSERT_EQ(result.num_components, 2);

  const std::vector<SpanRecord> spans = run.trace().Snapshot();
  std::set<int64_t> instance_ids;
  for (const SpanRecord& span : spans) {
    EXPECT_LT(span.parent, span.id);
    if (span.name == "milp.instance") instance_ids.insert(span.id);
  }
  EXPECT_EQ(instance_ids.size(), 2u);
  int search_spans = 0;
  for (const SpanRecord& span : spans) {
    if (span.name != "milp.search") continue;
    ++search_spans;
    EXPECT_EQ(instance_ids.count(span.parent), 1u)
        << "search span not nested under its instance span";
  }
  EXPECT_EQ(search_spans, 2);
  EXPECT_EQ(run.metrics().Snapshot().Counter("milp.solves"), 2);
}

// --- JSON run report -------------------------------------------------------

// Minimal JSON parser — just enough for the run-report schema (objects,
// arrays, strings without exotic escapes, numbers, booleans, null).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipWs();
    EXPECT_EQ(pos_, text_.size()) << "trailing bytes after JSON document";
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWs();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void Expect(char c) {
    EXPECT_EQ(Peek(), c) << "at byte " << pos_;
    ++pos_;
  }

  JsonValue ParseValue() {
    const char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  JsonValue ParseObject() {
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    Expect('{');
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      JsonValue key = ParseString();
      Expect(':');
      value.object[key.str] = ParseValue();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return value;
    }
  }

  JsonValue ParseArray() {
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    Expect('[');
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return value;
    }
  }

  JsonValue ParseString() {
    JsonValue value;
    value.type = JsonValue::Type::kString;
    Expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        if (esc == 'n') {
          c = '\n';
        } else if (esc == 't') {
          c = '\t';
        } else {
          c = esc;  // \" \\ \/ — metric names never need \u escapes
        }
      }
      value.str.push_back(c);
    }
    Expect('"');
    return value;
  }

  JsonValue ParseBool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
    } else {
      EXPECT_EQ(text_.compare(pos_, 5, "false"), 0);
      pos_ += 5;
    }
    return value;
  }

  JsonValue ParseNull() {
    EXPECT_EQ(text_.compare(pos_, 4, "null"), 0);
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    EXPECT_GT(pos_, start) << "expected a number at byte " << start;
    value.number = std::stod(text_.substr(start, pos_ - start));
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(ReportTest, JsonRoundTripMatchesSnapshotAndTrace) {
  RunContext run;
  run.metrics().AddCounter("milp.nodes", 42);
  run.metrics().AddCounter("repair.attempts", 2);
  run.metrics().SetGauge("milp.components", 3.0);
  run.metrics().Observe("repair.solve_seconds", 0.125);
  {
    Span outer(&run, "pipeline.process");
    Span inner(&run, "pipeline.repair");
  }

  const std::string json = RunReportJson(run);
  JsonValue doc = JsonParser(json).Parse();
  ASSERT_EQ(doc.type, JsonValue::Type::kObject);
  EXPECT_EQ(doc.at("schema").str, std::string(kRunReportSchema));
  EXPECT_EQ(doc.at("schema_version").number, kRunReportSchemaVersion);

  const MetricsSnapshot snap = run.metrics().Snapshot();
  const JsonValue& counters = doc.at("counters");
  ASSERT_EQ(counters.type, JsonValue::Type::kObject);
  EXPECT_EQ(counters.object.size(), snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    ASSERT_EQ(counters.object.count(name), 1u) << name;
    EXPECT_EQ(counters.at(name).number, static_cast<double>(value)) << name;
  }
  EXPECT_EQ(doc.at("gauges").at("milp.components").number, 3.0);

  const JsonValue& hist = doc.at("histograms").at("repair.solve_seconds");
  EXPECT_EQ(hist.at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 0.125);
  ASSERT_EQ(hist.at("buckets").type, JsonValue::Type::kArray);
  double bucket_total = 0;
  for (const JsonValue& pair : hist.at("buckets").array) {
    ASSERT_EQ(pair.array.size(), 2u);
    EXPECT_GE(pair.array[0].number, 0.0);
    EXPECT_LT(pair.array[0].number, kHistogramBuckets);
    bucket_total += pair.array[1].number;
  }
  EXPECT_EQ(bucket_total, 1.0);

  const JsonValue& spans = doc.at("spans");
  ASSERT_EQ(spans.type, JsonValue::Type::kArray);
  ASSERT_EQ(spans.array.size(), 2u);
  EXPECT_EQ(spans.array[0].at("name").str, "pipeline.process");
  EXPECT_EQ(spans.array[1].at("name").str, "pipeline.repair");
  EXPECT_EQ(spans.array[1].at("parent").number,
            spans.array[0].at("id").number);
  for (const JsonValue& span : spans.array) {
    EXPECT_LT(span.at("parent").number, span.at("id").number);
    EXPECT_GE(span.at("duration_ns").number, 0.0);
  }

  // WriteRunReport writes byte-identical content (all spans are closed, so
  // nothing in the report depends on "now").
  const std::string path = "obs_test_report.json";
  ASSERT_TRUE(WriteRunReport(run, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), json);
  std::remove(path.c_str());
}

TEST(ReportTest, RunReportCarriesBucketBounds) {
  RunContext run;
  run.metrics().Observe("lat", 3e-6);                      // bucket 2
  run.metrics().Observe("lat", {{"tenant", "a"}}, 3e-6);   // labeled sibling
  const std::string json = RunReportJson(run);
  JsonValue doc = JsonParser(json).Parse();
  for (const std::string& name : {std::string("lat"),
                                  std::string("lat{tenant=a}")}) {
    const JsonValue& hist = doc.at("histograms").at(name);
    const auto& buckets = hist.at("buckets").array;
    const auto& bounds = hist.at("bucket_bounds").array;
    ASSERT_EQ(buckets.size(), 1u) << name;
    ASSERT_EQ(bounds.size(), buckets.size()) << name;
    EXPECT_EQ(buckets[0].array[0].number, 2) << name;
    EXPECT_DOUBLE_EQ(bounds[0].number, 4e-6) << name;
  }
}

TEST(ReportTest, ChromeTraceExportsSpansAsCompleteEvents) {
  RunContext run;
  {
    Span outer(&run, "outer");
    Span inner(&run, "inner");
  }
  Span open_span(&run, "still.open");
  const std::string json = ChromeTraceJson(run);
  JsonValue doc = JsonParser(json).Parse();
  const auto& events = doc.at("traceEvents").array;
  ASSERT_EQ(events.size(), 3u);
  bool saw_open = false;
  for (const JsonValue& event : events) {
    EXPECT_EQ(event.at("ph").str, "X");
    EXPECT_EQ(event.at("pid").number, 1);
    EXPECT_GE(event.at("ts").number, 0);
    EXPECT_GE(event.at("dur").number, 0);
    const auto& args = event.at("args").object;
    EXPECT_GT(args.at("id").number, 0);
    if (event.at("name").str == "still.open") {
      saw_open = true;
      EXPECT_EQ(event.at("dur").number, 0);
      EXPECT_TRUE(args.at("open").boolean);
    }
  }
  EXPECT_TRUE(saw_open);
  open_span.End();

  const std::string path = "obs_test_chrome.trace.json";
  ASSERT_TRUE(WriteChromeTrace(run, path).ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::ostringstream text;
  text << file.rdbuf();
  EXPECT_NE(text.str().find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
}

// --- Engine search counters via the registry --------------------------------

TEST(EngineStatsTest, RegistryDeltaIsDeterministicAcrossIdenticalRuns) {
  const bench::Scenario scenario =
      bench::MakeBudgetScenario(/*seed=*/5, /*years=*/2, /*num_errors=*/2);

  // Two independent contexts around two identical single-threaded solves:
  // the published search counters must agree exactly — this is the contract
  // benches rely on when they read counters from one instrumented replay
  // instead of the timed loop.
  RunContext first_run;
  repair::RepairEngineOptions first_options;
  first_options.milp.search.num_threads = 1;  // deterministic search tree
  first_options.run = &first_run;
  repair::RepairEngine first_engine(first_options);
  auto first =
      first_engine.ComputeRepair(scenario.acquired, scenario.constraints);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  RunContext second_run;
  repair::RepairEngineOptions second_options;
  second_options.milp.search.num_threads = 1;
  second_options.run = &second_run;
  repair::RepairEngine second_engine(second_options);
  auto second =
      second_engine.ComputeRepair(scenario.acquired, scenario.constraints);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  const MetricsSnapshot a = first_run.metrics().Snapshot();
  const MetricsSnapshot b = second_run.metrics().Snapshot();
  EXPECT_GT(a.Counter("milp.nodes"), 0);
  EXPECT_EQ(a.Counter("milp.nodes"), b.Counter("milp.nodes"));
  EXPECT_EQ(a.Counter("milp.lp_iterations"), b.Counter("milp.lp_iterations"));
  EXPECT_EQ(a.Counter("milp.lp_warm_solves"),
            b.Counter("milp.lp_warm_solves"));
  // Single-threaded search: no steals, and all nodes attributed to thread 0.
  EXPECT_EQ(a.Counter("milp.scheduler.steals"), 0);
  EXPECT_EQ(a.Counter("milp.scheduler.thread.0.nodes"),
            a.Counter("milp.nodes"));
  EXPECT_EQ(a.Counter("repair.attempts"), 1);
}

TEST(EngineStatsTest, SharedContextAttributesEachSolveByDelta) {
  const bench::Scenario scenario =
      bench::MakeBudgetScenario(/*seed=*/6, /*years=*/2, /*num_errors=*/2);
  RunContext run;
  repair::RepairEngineOptions options;
  options.milp.search.num_threads = 1;
  options.run = &run;
  repair::RepairEngine engine(options);

  const MetricsSnapshot base = run.metrics().Snapshot();
  auto first = engine.ComputeRepair(scenario.acquired, scenario.constraints);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const MetricsSnapshot mid = run.metrics().Snapshot();
  auto second = engine.ComputeRepair(scenario.acquired, scenario.constraints);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  const MetricsSnapshot end = run.metrics().Snapshot();

  // Snapshot deltas isolate each solve even though both share one registry:
  // identical inputs produce identical per-solve deltas...
  const int64_t first_nodes = mid.DeltaSince(base).Counter("milp.nodes");
  const int64_t second_nodes = end.DeltaSince(mid).Counter("milp.nodes");
  EXPECT_GT(first_nodes, 0);
  EXPECT_EQ(first_nodes, second_nodes);
  EXPECT_EQ(mid.DeltaSince(base).Counter("milp.lp_iterations"),
            end.DeltaSince(mid).Counter("milp.lp_iterations"));
  // ...while the registry accumulates across the run.
  EXPECT_EQ(end.Counter("milp.nodes"), first_nodes + second_nodes);
  EXPECT_EQ(end.Counter("repair.attempts"), 2);
}

// --- Bounded trace ring under overflow --------------------------------------

TEST(TraceRingTest, OverflowDropsExactlyAndKeepsValidTree) {
  TraceOptions tiny;
  tiny.capacity = 4;
  tiny.head_samples_per_name = 1;
  RunContext run(tiny);
  constexpr int kIterations = 100;
  for (int i = 0; i < kIterations; ++i) {
    Span iter(&run, "loop.iter");
    Span child(&run, "loop.child");
  }

  // 200 spans total; one of each name is pinned by head sampling, the ring
  // keeps 4 closed spans, everything else is evicted — exactly.
  const int64_t expected_drops = 2 * kIterations - 2 - 4;
  EXPECT_EQ(run.trace().spans_dropped(), expected_drops);
  EXPECT_EQ(run.metrics().Snapshot().Counter("obs.spans_dropped"),
            expected_drops);

  const std::vector<SpanRecord> spans = run.trace().Snapshot();
  ASSERT_EQ(spans.size(), 6u);
  // The pinned head samples are the very first iteration's pair.
  EXPECT_EQ(spans[0].id, 1);
  EXPECT_EQ(spans[0].name, "loop.iter");
  EXPECT_EQ(spans[1].id, 2);
  EXPECT_EQ(spans[1].name, "loop.child");
  // Survivors form a valid tree: sorted by id, parent < id, and every
  // non-zero parent resolves to a surviving record (evictions re-root).
  std::set<int64_t> ids;
  int64_t previous_id = 0;
  for (const SpanRecord& span : spans) {
    EXPECT_GT(span.id, previous_id);
    previous_id = span.id;
    ids.insert(span.id);
  }
  for (const SpanRecord& span : spans) {
    EXPECT_LT(span.parent, span.id);
    if (span.parent != 0) {
      EXPECT_EQ(ids.count(span.parent), 1u) << span.id;
    }
    EXPECT_GE(span.duration_ns, 0);
  }
}

TEST(TraceRingTest, OpenSpansSurviveZeroCapacity) {
  TraceOptions none;
  none.capacity = 0;
  none.head_samples_per_name = 0;
  RunContext run(none);
  Span open(&run, "still.open");
  {
    Span closed(&run, "already.closed");
  }
  // The closed span had nowhere to go; the open one is never evicted.
  EXPECT_EQ(run.trace().spans_dropped(), 1);
  const std::vector<SpanRecord> spans = run.trace().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "still.open");
  EXPECT_EQ(spans[0].duration_ns, -1);
  EXPECT_LE(spans[0].start_ns, run.trace().NowNs());
}

// --- Streaming exporter -----------------------------------------------------

std::vector<JsonValue> ReadMetricsDeltaStream(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<JsonValue> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    records.push_back(JsonParser(line).Parse());
  }
  return records;
}

/// Shared checks for any metrics-delta stream: schema on every record,
/// contiguous seq from 0, non-negative counter deltas, `"final": true` on
/// exactly the last record, and counters telescoping to `final_snapshot`.
void ExpectValidStream(const std::vector<JsonValue>& records,
                       const MetricsSnapshot& final_snapshot) {
  ASSERT_FALSE(records.empty());
  std::map<std::string, int64_t> summed;
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonValue& record = records[i];
    ASSERT_EQ(record.type, JsonValue::Type::kObject);
    EXPECT_EQ(record.at("schema").str, std::string(kMetricsDeltaSchema));
    EXPECT_EQ(record.at("schema_version").number, kMetricsDeltaSchemaVersion);
    EXPECT_EQ(record.at("seq").number, static_cast<double>(i));
    EXPECT_GE(record.at("uptime_ms").number, 0.0);
    EXPECT_EQ(record.at("final").boolean, i + 1 == records.size());
    for (const auto& [name, value] : record.at("counters").object) {
      EXPECT_GE(value.number, 0.0) << name;
      summed[name] += static_cast<int64_t>(value.number);
    }
  }
  EXPECT_EQ(summed.size(), final_snapshot.counters.size());
  for (const auto& [name, value] : final_snapshot.counters) {
    EXPECT_EQ(summed[name], value) << name;
  }
}

TEST(ExporterTest, DeltasTelescopeToFinalSnapshot) {
  const std::string jsonl_path = "obs_test_stream.jsonl";
  const std::string prom_path = "obs_test_stream.prom";
  RunContext run;
  run.metrics().AddCounter("pre.start.activity", 3);  // before Start()

  ExporterOptions options;
  options.interval = std::chrono::milliseconds(5);
  options.jsonl_path = jsonl_path;
  options.prometheus_path = prom_path;
  PeriodicExporter exporter(&run, options);
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_FALSE(exporter.Start().ok());  // double Start refused

  for (int i = 0; i < 5; ++i) {
    run.metrics().AddCounter("tick.activity", 7);
    run.metrics().SetGauge("tick.gauge", static_cast<double>(i));
    run.metrics().Observe("tick.seconds", 0.001);
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
  }
  ASSERT_TRUE(exporter.Stop().ok());
  ASSERT_TRUE(exporter.Stop().ok());  // idempotent

  const std::vector<JsonValue> records = ReadMetricsDeltaStream(jsonl_path);
  EXPECT_EQ(static_cast<int64_t>(records.size()),
            exporter.records_written());
  ExpectValidStream(records, run.metrics().Snapshot());
  // The final record also telescopes the histogram count.
  int64_t observations = 0;
  for (const JsonValue& record : records) {
    const auto& histograms = record.at("histograms").object;
    auto it = histograms.find("tick.seconds");
    if (it != histograms.end()) {
      observations += static_cast<int64_t>(it->second.at("count").number);
    }
  }
  EXPECT_EQ(observations, 5);

  // Prometheus mirror holds the full final snapshot with sanitized names.
  std::ifstream prom(prom_path);
  ASSERT_TRUE(prom.is_open());
  std::ostringstream prom_text;
  prom_text << prom.rdbuf();
  EXPECT_NE(prom_text.str().find("# TYPE"), std::string::npos);
  EXPECT_NE(prom_text.str().find("tick_activity 35"), std::string::npos);
  std::remove(jsonl_path.c_str());
  std::remove(prom_path.c_str());
}

TEST(ExporterTest, StopWithoutTicksStillFlushesOneFinalRecord) {
  const std::string jsonl_path = "obs_test_stream_final.jsonl";
  RunContext run;
  run.metrics().AddCounter("only.activity", 11);
  ExporterOptions options;
  options.interval = std::chrono::hours(1);  // no periodic tick fires
  options.jsonl_path = jsonl_path;
  {
    PeriodicExporter exporter(&run, options);
    ASSERT_TRUE(exporter.Start().ok());
    // Destructor-driven Stop() must flush the final record.
  }
  const std::vector<JsonValue> records = ReadMetricsDeltaStream(jsonl_path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].at("final").boolean);
  EXPECT_EQ(records[0].at("counters").at("only.activity").number, 11.0);
  std::remove(jsonl_path.c_str());
}

TEST(ExporterTest, NullRunIsInert) {
  ExporterOptions options;
  options.jsonl_path = "obs_test_never_written.jsonl";
  PeriodicExporter exporter(nullptr, options);
  EXPECT_TRUE(exporter.Start().ok());
  EXPECT_TRUE(exporter.Stop().ok());
  EXPECT_EQ(exporter.records_written(), 0);
  std::ifstream in(options.jsonl_path);
  EXPECT_FALSE(in.is_open());
}

TEST(ExporterTest, ConcurrentTrafficStreamsConsistently) {
  // Eight writer threads race the exporter's 1 ms ticks; run under the
  // tsan_smoke target this doubles as the data-race check for the streaming
  // path. Whatever interleaving happens, the stream must stay well-formed
  // and telescope to the final registry state.
  const std::string jsonl_path = "obs_test_stream_race.jsonl";
  RunContext run;
  ExporterOptions options;
  options.interval = std::chrono::milliseconds(1);
  options.jsonl_path = jsonl_path;
  PeriodicExporter exporter(&run, options);
  ASSERT_TRUE(exporter.Start().ok());

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&run, t] {
      const std::string mine = "race.thread." + std::to_string(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        run.metrics().AddCounter("race.shared");
        run.metrics().AddCounter(mine);
        if (i % 64 == 0) {
          Span span(&run, "race.span");
        }
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  ASSERT_TRUE(exporter.Stop().ok());

  const MetricsSnapshot final_snapshot = run.metrics().Snapshot();
  EXPECT_EQ(final_snapshot.Counter("race.shared"),
            static_cast<int64_t>(kThreads) * kOpsPerThread);
  ExpectValidStream(ReadMetricsDeltaStream(jsonl_path), final_snapshot);
  std::remove(jsonl_path.c_str());
}

// --- Latency-biased tail sampling -------------------------------------------

/// Closes one span of `name` that lasted at least `duration`.
void RunSpan(RunContext* run, const char* name,
             std::chrono::milliseconds duration =
                 std::chrono::milliseconds(0)) {
  Span span(run, name);
  if (duration.count() > 0) std::this_thread::sleep_for(duration);
}

// With tail sampling on, the slowest spans of a name survive arbitrary ring
// churn that would have evicted them under head sampling alone — and only
// real ring evictions count as drops.
TEST(TailSamplingTest, SlowestSpansSurviveRingChurn) {
  TraceOptions options;
  options.capacity = 4;
  options.head_samples_per_name = 0;
  options.tail_samples_per_name = 2;
  RunContext run(options);

  constexpr int kSpans = 50;
  for (int i = 0; i < kSpans; ++i) {
    // Spans 10 and 30 are orders of magnitude slower than the rest; by the
    // end the ring has churned them out many times over.
    const auto duration = i == 10   ? std::chrono::milliseconds(8)
                          : i == 30 ? std::chrono::milliseconds(4)
                                    : std::chrono::milliseconds(0);
    RunSpan(&run, "tail.req", duration);
  }

  // 50 closed spans; 2 retained as tails, 4 in the ring, the rest dropped.
  EXPECT_EQ(run.trace().spans_dropped(), kSpans - 2 - 4);
  const std::vector<SpanRecord> spans = run.trace().Snapshot();
  ASSERT_EQ(spans.size(), 6u);
  std::set<int64_t> ids;
  int64_t previous_id = 0;
  for (const SpanRecord& span : spans) {
    EXPECT_GT(span.id, previous_id);  // still sorted by id
    previous_id = span.id;
    ids.insert(span.id);
  }
  // Ids are 1-based in Begin() order: the slow spans are 11 and 31.
  EXPECT_EQ(ids.count(11), 1u);
  EXPECT_EQ(ids.count(31), 1u);
}

// Displacement from the tail set demotes the span into the ring — it ages
// out normally instead of being dropped on the spot.
TEST(TailSamplingTest, DisplacedTailSpanDemotesToRing) {
  TraceOptions options;
  options.capacity = 100;
  options.head_samples_per_name = 0;
  options.tail_samples_per_name = 1;
  RunContext run(options);

  RunSpan(&run, "demote.req", std::chrono::milliseconds(3));  // enters tail
  RunSpan(&run, "demote.req");  // faster: straight to the ring
  RunSpan(&run, "demote.req", std::chrono::milliseconds(8));  // displaces #1

  EXPECT_EQ(run.trace().spans_dropped(), 0);  // demotion is not a drop
  EXPECT_EQ(run.trace().Snapshot().size(), 3u);
}

// Tail samples coexist with head samples and only apply per name.
TEST(TailSamplingTest, TailsArePerNameAndAdditiveToHeads) {
  TraceOptions options;
  options.capacity = 2;
  options.head_samples_per_name = 1;
  options.tail_samples_per_name = 1;
  RunContext run(options);

  for (int i = 0; i < 10; ++i) {
    RunSpan(&run, "a.req", i == 7 ? std::chrono::milliseconds(5)
                                  : std::chrono::milliseconds(0));
    RunSpan(&run, "b.req");
  }
  const std::vector<SpanRecord> spans = run.trace().Snapshot();
  // Per name: 1 pinned head + 1 tail; plus the 2-slot shared ring.
  ASSERT_EQ(spans.size(), 6u);
  int slow_a = 0;
  for (const SpanRecord& span : spans) {
    if (span.name == "a.req" && span.id == 15) ++slow_a;  // iteration 7
  }
  EXPECT_EQ(slow_a, 1);
}

// --- Exporter sinks ---------------------------------------------------------

ExportTick MakeTick(int64_t seq, const char* counter, int64_t value,
                    bool final_record = false) {
  ExportTick tick;
  tick.seq = seq;
  tick.uptime_ms = seq * 10;
  tick.final_record = final_record;
  tick.delta.counters[counter] = value;
  return tick;
}

TEST(SinkTest, InMemoryRingFoldsEvictedDeltas) {
  InMemoryRingSink sink(2);
  sink.Emit(MakeTick(0, "work", 3));
  sink.Emit(MakeTick(1, "work", 5));
  EXPECT_EQ(sink.dropped(), 0);
  EXPECT_TRUE(sink.evicted_total().counters.empty());

  sink.Emit(MakeTick(2, "work", 7, /*final_record=*/true));
  const std::vector<InMemoryRingSink::Record> records = sink.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 1);
  EXPECT_EQ(records[1].seq, 2);
  EXPECT_TRUE(records[1].final_record);
  EXPECT_EQ(sink.dropped(), 1);
  // Telescoping survives eviction: evicted_total + retained == 15.
  EXPECT_EQ(sink.evicted_total().Counter("work") +
                records[0].delta.Counter("work") +
                records[1].delta.Counter("work"),
            15);
}

// The exporter fans every tick out to all registered sinks — with no file
// paths configured at all, the stream is purely in-process.
TEST(SinkTest, ExporterFansOutToSinksWithoutFiles) {
  RunContext run;
  run.metrics().AddCounter("fan.pre", 2);

  InMemoryRingSink ring(32);
  PrometheusTextSink prometheus;
  int callback_ticks = 0;
  int64_t callback_sum = 0;
  bool callback_saw_final = false;
  bool full_matches_delta_sum = true;
  int64_t running_sum = 2;  // tracks what `full` should show
  CallbackSink callback([&](const ExportTick& tick) {
    ++callback_ticks;
    callback_sum += tick.delta.Counter("fan.pre") +
                    tick.delta.Counter("fan.live");
    callback_saw_final = tick.final_record;
    // The transient full snapshot always reflects every delta so far.
    ASSERT_NE(tick.full, nullptr);
    running_sum = tick.full->Counter("fan.pre") + tick.full->Counter("fan.live");
    if (running_sum != callback_sum) full_matches_delta_sum = false;
  });

  ExporterOptions options;
  options.interval = std::chrono::milliseconds(5);
  options.sinks = {&ring, &prometheus, &callback};
  PeriodicExporter exporter(&run, options);
  ASSERT_TRUE(exporter.Start().ok());
  for (int i = 0; i < 4; ++i) {
    run.metrics().AddCounter("fan.live", 10);
    std::this_thread::sleep_for(std::chrono::milliseconds(7));
  }
  ASSERT_TRUE(exporter.Stop().ok());

  const std::vector<InMemoryRingSink::Record> records = ring.Records();
  ASSERT_FALSE(records.empty());
  EXPECT_TRUE(records.back().final_record);
  int64_t ring_sum = 0;
  for (const InMemoryRingSink::Record& record : records) {
    ring_sum += record.delta.Counter("fan.pre") +
                record.delta.Counter("fan.live");
  }
  EXPECT_EQ(ring_sum, 42);  // 2 pre-start + 4 * 10 live
  EXPECT_EQ(callback_sum, 42);
  EXPECT_TRUE(callback_saw_final);
  EXPECT_TRUE(full_matches_delta_sum);
  EXPECT_GE(callback_ticks, 1);
  const std::string scrape = prometheus.Scrape();
  EXPECT_NE(scrape.find("fan_pre 2"), std::string::npos) << scrape;
  EXPECT_NE(scrape.find("fan_live 40"), std::string::npos) << scrape;
}

TEST(SinkTest, FailingSinkOpenAbortsStart) {
  struct FailingSink : ExporterSink {
    Status Open() override { return Status::InvalidArgument("no backend"); }
    void Emit(const ExportTick&) override {}
  };
  RunContext run;
  FailingSink failing;
  ExporterOptions options;
  options.sinks = {&failing};
  PeriodicExporter exporter(&run, options);
  const Status started = exporter.Start();
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dart::obs
