// Cross-relation constraints: a premise joining two atoms through a shared
// (non-measure) variable — J(κ) non-empty yet steady — grounded and
// repaired across relations. Scenario: the cash budget must reconcile with
// an independently-acquired bank statement (ending cash balance of year y =
// the bank's reported balance for y).

#include <gtest/gtest.h>

#include "constraints/eval.h"
#include "constraints/parser.h"
#include "constraints/steady.h"
#include "ocr/cash_budget.h"
#include "repair/engine.h"

namespace dart::repair {
namespace {

/// Adds Bank(Year:Int, Balance:Int*) with the given per-year balances.
void AddBankStatement(rel::Database* db,
                      const std::vector<std::pair<int, int64_t>>& balances) {
  auto schema = rel::RelationSchema::Create(
      "Bank", {{"Year", rel::Domain::kInt, false},
               {"Balance", rel::Domain::kInt, true}});
  DART_CHECK(schema.ok());
  DART_CHECK(db->AddRelation(*schema).ok());
  rel::Relation* relation = db->FindRelation("Bank");
  for (const auto& [year, balance] : balances) {
    DART_CHECK(relation
                   ->Insert({rel::Value(int64_t{year}), rel::Value(balance)})
                   .ok());
  }
}

const char* kReconciliationProgram = R"(
agg chi2(x, y) := sum(Value) from CashBudget
    where Year = x and Subsection = y;
agg bank(x) := sum(Balance) from Bank where Year = x;

# The budget's ending balance must match the bank statement, year by year.
# The premise joins the two relations through the (non-measure) Year.
constraint reconcile: CashBudget(y, _, _, _, _), Bank(y, _)
    => chi2(y, 'ending cash balance') - bank(y) = 0;
)";

class CrossRelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = ocr::CashBudgetFixture::PaperExample(false);  // consistent
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    // Matching statement: 80 (2003) and 90 (2004), per Fig. 1.
    AddBankStatement(&db_, {{2003, 80}, {2004, 90}});
    Status status = cons::ParseConstraintProgram(
        db_.Schema(), kReconciliationProgram, &constraints_);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  rel::Database db_;
  cons::ConstraintSet constraints_;
};

TEST_F(CrossRelationTest, JoinConstraintIsSteady) {
  const rel::DatabaseSchema schema = db_.Schema();
  auto report = cons::AnalyzeSteadiness(schema, constraints_,
                                        constraints_.constraints()[0]);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // y is shared by the two atoms → J(κ) = {CashBudget.Year, Bank.Year},
  // neither a measure — steady.
  std::vector<cons::AttrRef> expected_j = {{"Bank", "Year"},
                                           {"CashBudget", "Year"}};
  EXPECT_EQ(report->j_set, expected_j);
  EXPECT_TRUE(report->steady()) << report->ToString();
}

TEST_F(CrossRelationTest, ConsistentWhenStatementsMatch) {
  cons::ConsistencyChecker checker(&constraints_);
  auto consistent = checker.IsConsistent(db_);
  ASSERT_TRUE(consistent.ok());
  EXPECT_TRUE(*consistent);
}

TEST_F(CrossRelationTest, GroundingJoinsOnSharedYear) {
  const cons::AggregateConstraint& constraint = constraints_.constraints()[0];
  auto bindings = cons::GroundSubstitutions(db_, constraint.premise,
                                            cons::TermVariables(constraint));
  ASSERT_TRUE(bindings.ok());
  EXPECT_EQ(bindings->size(), 2u);  // one per matching year
}

TEST_F(CrossRelationTest, BankOnlyYearProducesNoGroundConstraint) {
  // A bank row for a year absent from the budget joins with nothing.
  rel::Database db = db_.Clone();
  ASSERT_TRUE(db.FindRelation("Bank")
                  ->Insert({rel::Value(2099), rel::Value(123)})
                  .ok());
  cons::ConsistencyChecker checker(&constraints_);
  EXPECT_TRUE(*checker.IsConsistent(db));
}

TEST_F(CrossRelationTest, RepairSpansBothRelations) {
  // Corrupt the BANK side: 2004 balance read as 20 instead of 90. With only
  // the reconciliation constraint active, two single-change explanations
  // exist (fix the bank figure, or move the budget's ending balance); the
  // repair must be one change on one of those two cells and restore
  // consistency.
  rel::Database corrupted = db_.Clone();
  ASSERT_TRUE(corrupted.UpdateCell({"Bank", 1, 1}, rel::Value(20)).ok());
  RepairEngine engine;
  auto outcome = engine.ComputeRepair(corrupted, constraints_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->repair.cardinality(), 1u);
  const AtomicUpdate& update = outcome->repair.updates()[0];
  const bool fixed_bank = update.cell == rel::CellRef{"Bank", 1, 1};
  const bool moved_budget = update.cell == rel::CellRef{"CashBudget", 19, 4};
  EXPECT_TRUE(fixed_bank || moved_budget) << update.ToString();
  auto repaired = outcome->repair.Applied(corrupted);
  ASSERT_TRUE(repaired.ok());
  cons::ConsistencyChecker checker(&constraints_);
  EXPECT_TRUE(*checker.IsConsistent(*repaired));
}

TEST_F(CrossRelationTest, CombinedConstraintsRepairTheBudgetSide) {
  // With BOTH the internal budget constraints and the reconciliation
  // active, corrupting the budget's ending balance is pinned down from two
  // directions (c3 and the bank statement): the unique single-change repair
  // restores it.
  rel::Database corrupted = db_.Clone();
  cons::ConstraintSet combined;
  Status status = cons::ParseConstraintProgram(
      corrupted.Schema(),
      ocr::CashBudgetFixture::ConstraintProgram() + std::string(R"(
agg bank(x) := sum(Balance) from Bank where Year = x;
constraint reconcile: CashBudget(y, _, _, _, _), Bank(y, _)
    => chi2(y, 'ending cash balance') - bank(y) = 0;
)"),
      &combined);
  ASSERT_TRUE(status.ok()) << status.ToString();
  // ending cash balance 2004: 90 → 40.
  ASSERT_TRUE(corrupted.UpdateCell({"CashBudget", 19, 4}, rel::Value(40)).ok());
  RepairEngine engine;
  auto outcome = engine.ComputeRepair(corrupted, combined);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->repair.cardinality(), 1u);
  EXPECT_EQ(outcome->repair.updates()[0].cell,
            (rel::CellRef{"CashBudget", 19, 4}));
  EXPECT_EQ(outcome->repair.updates()[0].new_value, rel::Value(90));
}

TEST_F(CrossRelationTest, MeasureCellsSpanRelations) {
  auto cells = db_.MeasureCells();
  size_t budget_cells = 0, bank_cells = 0;
  for (const rel::CellRef& cell : cells) {
    if (cell.relation == "CashBudget") ++budget_cells;
    if (cell.relation == "Bank") ++bank_cells;
  }
  EXPECT_EQ(budget_cells, 20u);
  EXPECT_EQ(bank_cells, 2u);
}

}  // namespace
}  // namespace dart::repair
