// Tests for the CQA extension (consistent value intervals under the
// card-minimal semantics): the running example has a unique card-minimal
// repair, so every cell's interval is a point; pinning the "wrong" value
// opens genuine ambiguity and the intervals must widen on exactly the
// ambiguous cells.

#include <gtest/gtest.h>

#include "constraints/parser.h"
#include "ocr/cash_budget.h"
#include "repair/cqa.h"
#include "repair/engine.h"

namespace dart::repair {
namespace {

using ocr::CashBudgetFixture;

class CqaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = CashBudgetFixture::PaperExample(/*with_acquisition_error=*/true);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Status status = cons::ParseConstraintProgram(
        db_.Schema(), CashBudgetFixture::ConstraintProgram(), &constraints_);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  const CellInterval* IntervalOf(const CqaResult& result,
                                 const rel::CellRef& cell) {
    for (const CellInterval& interval : result.intervals) {
      if (interval.cell == cell) return &interval;
    }
    return nullptr;
  }

  rel::Database db_;
  cons::ConstraintSet constraints_;
};

TEST_F(CqaTest, UniqueRepairMakesEveryCellReliable) {
  // "In our running example, repair ρ of Example 6 is the unique
  // card-minimal repair" — so every cell's consistent interval is a point,
  // and z₄'s point is 220, not its acquired 250.
  auto result = ComputeConsistentIntervals(db_, constraints_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->min_repair_cardinality, 1u);
  ASSERT_EQ(result->intervals.size(), 20u);
  for (const CellInterval& interval : result->intervals) {
    EXPECT_TRUE(interval.reliable())
        << interval.cell.ToString() << " in [" << interval.min_value << ", "
        << interval.max_value << "]";
  }
  const CellInterval* z4 = IntervalOf(*result, {"CashBudget", 3, 4});
  ASSERT_NE(z4, nullptr);
  EXPECT_NEAR(z4->min_value, 220, 1e-6);
  EXPECT_NEAR(z4->max_value, 220, 1e-6);
  EXPECT_TRUE(z4->touched());
  // An untouched cell keeps its acquired value.
  const CellInterval* z2 = IntervalOf(*result, {"CashBudget", 1, 4});
  ASSERT_NE(z2, nullptr);
  EXPECT_FALSE(z2->touched());
  EXPECT_NEAR(z2->min_value, 100, 1e-6);
}

TEST_F(CqaTest, ConsistentDatabaseHasPointIntervalsEverywhere) {
  auto clean = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(clean.ok());
  auto result = ComputeConsistentIntervals(*clean, constraints_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->min_repair_cardinality, 0u);
  for (const CellInterval& interval : result->intervals) {
    EXPECT_TRUE(interval.reliable());
    EXPECT_FALSE(interval.touched());
    EXPECT_NEAR(interval.min_value, interval.current_value, 1e-6);
  }
}

TEST_F(CqaTest, AmbiguousOptimaWidenIntervals) {
  // Corrupt cash sales AND total cash receipts consistently with c1 but not
  // c2: two distinct cardinality-2 repairs exist ({cash sales, total} back
  // to truth vs {net inflow, ending balance} forward), so the touched cells
  // cannot all be reliable.
  rel::Database ambiguous = db_.Clone();
  ASSERT_TRUE(
      ambiguous.UpdateCell({"CashBudget", 3, 4}, rel::Value(270)).ok());
  ASSERT_TRUE(
      ambiguous.UpdateCell({"CashBudget", 1, 4}, rel::Value(150)).ok());
  auto result = ComputeConsistentIntervals(ambiguous, constraints_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->min_repair_cardinality, 2u);
  size_t unreliable = 0;
  for (const CellInterval& interval : result->intervals) {
    if (!interval.reliable()) ++unreliable;
  }
  EXPECT_GE(unreliable, 2u);
}

TEST_F(CqaTest, IntervalsBracketEveryEngineRepair) {
  // Property: the value assigned by any card-minimal repair the engine
  // returns lies within the computed interval of its cell.
  auto result = ComputeConsistentIntervals(db_, constraints_);
  ASSERT_TRUE(result.ok());
  RepairEngine engine;
  auto outcome = engine.ComputeRepair(db_, constraints_);
  ASSERT_TRUE(outcome.ok());
  for (const AtomicUpdate& update : outcome->repair.updates()) {
    const CellInterval* interval = IntervalOf(*result, update.cell);
    ASSERT_NE(interval, nullptr);
    EXPECT_GE(update.new_value.AsReal(), interval->min_value - 1e-6);
    EXPECT_LE(update.new_value.AsReal(), interval->max_value + 1e-6);
  }
}

TEST_F(CqaTest, OnlyInvolvedCellsOptionShrinksWork) {
  CqaOptions options;
  options.only_involved_cells = true;
  auto restricted = ComputeConsistentIntervals(db_, constraints_, options);
  ASSERT_TRUE(restricted.ok());
  // All 20 cells are involved in the running example; on a database with an
  // extra unconstrained relation the restriction would shrink this.
  EXPECT_EQ(restricted->intervals.size(), 20u);
  EXPECT_EQ(restricted->milp_solves, 1 + 2 * 20);
}

TEST_F(CqaTest, AggregateQueryAnswerOnRunningExample) {
  // Query: chi2(2003, 'total cash receipts'). Acquired value 250; the
  // unique card-minimal repair puts it at 220, so the consistent answer is
  // the certain value 220.
  auto answer = ConsistentAggregateAnswer(
      db_, constraints_, "chi2",
      {rel::Value(2003), rel::Value("total cash receipts")});
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_DOUBLE_EQ(answer->value_on_acquired, 250);
  EXPECT_TRUE(answer->certain());
  EXPECT_NEAR(answer->min_value, 220, 1e-6);
  EXPECT_EQ(answer->min_repair_cardinality, 1u);
}

TEST_F(CqaTest, AggregateQueryOverUntouchedCellsIsCertain) {
  // chi1('Disbursements', 2003, 'det') = 160 in every card-minimal repair
  // (nothing in the 2003 disbursements section is implicated).
  auto answer = ConsistentAggregateAnswer(
      db_, constraints_, "chi1",
      {rel::Value("Disbursements"), rel::Value(2003), rel::Value("det")});
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->certain());
  EXPECT_NEAR(answer->min_value, 160, 1e-6);
  EXPECT_DOUBLE_EQ(answer->value_on_acquired, 160);
}

TEST_F(CqaTest, AggregateQueryUncertainUnderAmbiguity) {
  // The compensating-corruption instance: chi2(2003, 'cash sales') differs
  // between the two optima (150 stays vs goes back to 100), so the answer
  // is an interval, not a point.
  rel::Database ambiguous = db_.Clone();
  ASSERT_TRUE(
      ambiguous.UpdateCell({"CashBudget", 3, 4}, rel::Value(270)).ok());
  ASSERT_TRUE(
      ambiguous.UpdateCell({"CashBudget", 1, 4}, rel::Value(150)).ok());
  auto answer = ConsistentAggregateAnswer(
      ambiguous, constraints_, "chi2",
      {rel::Value(2003), rel::Value("cash sales")});
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_FALSE(answer->certain());
  EXPECT_NEAR(answer->min_value, 100, 1e-6);
  EXPECT_NEAR(answer->max_value, 150, 1e-6);
}

TEST_F(CqaTest, AggregateQueryUnknownFunctionRejected) {
  auto answer = ConsistentAggregateAnswer(db_, constraints_, "ghost", {});
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dart::repair
