// Tests for the Validation Interface rendering: updates shown in context,
// display order preserved, inline relation marking, and error handling for
// dangling references.

#include <gtest/gtest.h>

#include "constraints/parser.h"
#include "ocr/cash_budget.h"
#include "repair/engine.h"
#include "validation/display.h"

namespace dart::validation {
namespace {

using ocr::CashBudgetFixture;

class DisplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = CashBudgetFixture::PaperExample(true);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    cons::ConstraintSet constraints;
    ASSERT_TRUE(cons::ParseConstraintProgram(
                    db_.Schema(), CashBudgetFixture::ConstraintProgram(),
                    &constraints)
                    .ok());
    repair::RepairEngine engine;
    auto outcome = engine.ComputeRepair(db_, constraints);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    repair_ = outcome->repair;
  }

  rel::Database db_;
  repair::Repair repair_;
};

TEST_F(DisplayTest, UpdateShownInTupleContext) {
  auto rendered = RenderRepairForOperator(db_, repair_);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  // The operator sees the whole tuple with the updated value elided, then
  // the old -> new line.
  EXPECT_NE(rendered->find("#1"), std::string::npos);
  EXPECT_NE(rendered->find("CashBudget(2003, Receipts, total cash receipts, "
                           "aggr, ...)"),
            std::string::npos);
  EXPECT_NE(rendered->find("Value: 250  ->  220"), std::string::npos);
}

TEST_F(DisplayTest, EmptyRepairSaysSo) {
  auto rendered = RenderRepairForOperator(db_, repair::Repair{});
  ASSERT_TRUE(rendered.ok());
  EXPECT_NE(rendered->find("No updates suggested"), std::string::npos);
}

TEST_F(DisplayTest, PositionsCanBeHidden) {
  DisplayOptions options;
  options.show_positions = false;
  auto rendered = RenderRepairForOperator(db_, repair_, options);
  ASSERT_TRUE(rendered.ok());
  EXPECT_EQ(rendered->find("#1"), std::string::npos);
}

TEST_F(DisplayTest, RelationViewMarksUpdatedCells) {
  auto rendered = RenderRelationWithRepair(db_, "CashBudget", repair_);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  EXPECT_NE(rendered->find("250 -> 220 *"), std::string::npos);
  // Untouched values are rendered plainly.
  EXPECT_NE(rendered->find("receivables"), std::string::npos);
}

TEST_F(DisplayTest, DanglingReferencesReported) {
  repair::Repair dangling(
      {{rel::CellRef{"Missing", 0, 0}, rel::Value(1), rel::Value(2)}});
  EXPECT_FALSE(RenderRepairForOperator(db_, dangling).ok());
  repair::Repair out_of_range(
      {{rel::CellRef{"CashBudget", 999, 4}, rel::Value(1), rel::Value(2)}});
  EXPECT_FALSE(RenderRepairForOperator(db_, out_of_range).ok());
  EXPECT_FALSE(RenderRelationWithRepair(db_, "Missing", repair_).ok());
  EXPECT_FALSE(RenderRelationWithRepair(db_, "CashBudget", out_of_range).ok());
}

TEST_F(DisplayTest, MultiUpdateOrderPreserved) {
  repair::Repair two(
      {{rel::CellRef{"CashBudget", 7, 4}, rel::Value(160), rel::Value(190)},
       {rel::CellRef{"CashBudget", 1, 4}, rel::Value(100), rel::Value(130)}});
  auto rendered = RenderRepairForOperator(db_, two);
  ASSERT_TRUE(rendered.ok());
  const size_t first = rendered->find("total disbursements");
  const size_t second = rendered->find("cash sales");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);  // repair order == display order
}

TEST(SessionProgressTest, RendersCountsAndTimings) {
  SessionProgressView view;
  view.iteration = 3;
  view.suggested_updates = 2;
  view.examined = 2;
  view.accepted = 1;
  view.rejected = 1;
  view.attempt_seconds = 0.0124;
  view.iteration_seconds = 0.0131;
  const std::string line = RenderSessionProgress(view);
  EXPECT_EQ(line,
            "[validation] iter 3 | suggested 2 | examined 2 (accepted 1, "
            "rejected 1) | attempt 12.4 ms | iter 13.1 ms\n");
}

}  // namespace
}  // namespace dart::validation
