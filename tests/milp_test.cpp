// Tests for the MILP substrate: the bounded-variable simplex on hand-checked
// LPs, branch-and-bound on small integer programs, and agreement between
// branch-and-bound and the exhaustive binary-enumeration baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "milp/branch_and_bound.h"
#include "milp/exhaustive.h"
#include "milp/model.h"
#include "milp/simplex.h"
#include "util/random.h"

namespace dart::milp {
namespace {

constexpr double kTol = 1e-6;

TEST(ModelTest, AddVariableAndRows) {
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 10);
  int y = model.AddVariable("y", VarType::kInteger, -5, 5);
  EXPECT_EQ(model.num_variables(), 2);
  model.AddRow("r1", {{x, 1.0}, {y, 2.0}}, RowSense::kLe, 8);
  EXPECT_EQ(model.num_rows(), 1);
  EXPECT_TRUE(model.HasIntegrality());
  EXPECT_TRUE(model.Validate().ok());
}

TEST(ModelTest, DuplicateTermsAreMerged) {
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 10);
  model.AddRow("r", {{x, 1.0}, {x, 2.0}}, RowSense::kLe, 8);
  ASSERT_EQ(model.rows()[0].terms.size(), 1u);
  EXPECT_DOUBLE_EQ(model.rows()[0].terms[0].coefficient, 3.0);
}

TEST(ModelTest, BinaryBoundsForced) {
  Model model;
  int d = model.AddVariable("d", VarType::kBinary, -4, 9);
  EXPECT_DOUBLE_EQ(model.variable(d).lower, 0);
  EXPECT_DOUBLE_EQ(model.variable(d).upper, 1);
}

TEST(ModelTest, ZeroCoefficientsDropped) {
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 1);
  int y = model.AddVariable("y", VarType::kContinuous, 0, 1);
  model.AddRow("r", {{x, 1.0}, {y, 0.0}}, RowSense::kLe, 1);
  EXPECT_EQ(model.rows()[0].terms.size(), 1u);
}

TEST(ModelTest, FeasibilityPredicate) {
  Model model;
  int x = model.AddVariable("x", VarType::kInteger, 0, 10);
  model.AddRow("r", {{x, 1.0}}, RowSense::kLe, 5);
  EXPECT_TRUE(IsFeasiblePoint(model, {3.0}));
  EXPECT_FALSE(IsFeasiblePoint(model, {6.0}));   // violates row
  EXPECT_FALSE(IsFeasiblePoint(model, {2.5}));   // fractional integer
  EXPECT_FALSE(IsFeasiblePoint(model, {-1.0}));  // below bound
}

TEST(ModelTest, LpStringMentionsEverything) {
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 10);
  int d = model.AddVariable("d", VarType::kBinary, 0, 1);
  model.AddRow("cap", {{x, 1.0}, {d, -4.0}}, RowSense::kLe, 0);
  model.SetObjective({{d, 1.0}}, 0, ObjectiveSense::kMinimize);
  const std::string lp = model.ToLpString();
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("cap"), std::string::npos);
  EXPECT_NE(lp.find("Binary"), std::string::npos);
}

// --- LP relaxation -------------------------------------------------------

TEST(SimplexTest, SimpleMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, 0 <= x,y <= 10.
  // Optimum: x=4, y=0, obj=12.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 10);
  int y = model.AddVariable("y", VarType::kContinuous, 0, 10);
  model.AddRow("r1", {{x, 1.0}, {y, 1.0}}, RowSense::kLe, 4);
  model.AddRow("r2", {{x, 1.0}, {y, 3.0}}, RowSense::kLe, 6);
  model.SetObjective({{x, 3.0}, {y, 2.0}}, 0, ObjectiveSense::kMaximize);
  LpResult result = SolveLpRelaxation(model);
  ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 12.0, kTol);
  EXPECT_NEAR(result.point[x], 4.0, kTol);
  EXPECT_NEAR(result.point[y], 0.0, kTol);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x + y s.t. x + y = 3, x - y = 1 → x=2, y=1, obj=3.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, -10, 10);
  int y = model.AddVariable("y", VarType::kContinuous, -10, 10);
  model.AddRow("sum", {{x, 1.0}, {y, 1.0}}, RowSense::kEq, 3);
  model.AddRow("diff", {{x, 1.0}, {y, -1.0}}, RowSense::kEq, 1);
  model.SetObjective({{x, 1.0}, {y, 1.0}}, 0, ObjectiveSense::kMinimize);
  LpResult result = SolveLpRelaxation(model);
  ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.point[x], 2.0, kTol);
  EXPECT_NEAR(result.point[y], 1.0, kTol);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x s.t. x >= -7 within box [-10, 10] → x = -7... but the row is the
  // binding constraint, not the box.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, -10, 10);
  model.AddRow("floor", {{x, 1.0}}, RowSense::kGe, -7);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  LpResult result = SolveLpRelaxation(model);
  ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.point[x], -7.0, kTol);
}

TEST(SimplexTest, BoxOptimum) {
  // With no rows at all, minimization lands on the lower bound.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, -3, 8);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  LpResult result = SolveLpRelaxation(model);
  ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.point[x], -3.0, kTol);
}

TEST(SimplexTest, InfeasibleRows) {
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 10);
  model.AddRow("low", {{x, 1.0}}, RowSense::kGe, 6);
  model.AddRow("high", {{x, 1.0}}, RowSense::kLe, 5);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  EXPECT_EQ(SolveLpRelaxation(model).status,
            LpResult::SolveStatus::kInfeasible);
}

TEST(SimplexTest, InfeasibleBoundsOverride) {
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 10);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  std::vector<double> lower = {7}, upper = {3};
  EXPECT_EQ(SolveLpRelaxation(model, {}, &lower, &upper).status,
            LpResult::SolveStatus::kInfeasible);
}

TEST(SimplexTest, FixedVariable) {
  // x fixed at 4 by equal bounds participates as a constant.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 4, 4);
  int y = model.AddVariable("y", VarType::kContinuous, 0, 10);
  model.AddRow("r", {{x, 1.0}, {y, 1.0}}, RowSense::kEq, 9);
  model.SetObjective({{y, 1.0}}, 0, ObjectiveSense::kMinimize);
  LpResult result = SolveLpRelaxation(model);
  ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.point[x], 4.0, kTol);
  EXPECT_NEAR(result.point[y], 5.0, kTol);
}

TEST(SimplexTest, RedundantEqualitiesAreDropped) {
  // Two identical equalities: the redundant row's fixed slack simply stays
  // basic at zero — the solver must not declare infeasibility.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 10);
  int y = model.AddVariable("y", VarType::kContinuous, 0, 10);
  model.AddRow("a", {{x, 1.0}, {y, 1.0}}, RowSense::kEq, 5);
  model.AddRow("b", {{x, 1.0}, {y, 1.0}}, RowSense::kEq, 5);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  LpResult result = SolveLpRelaxation(model);
  ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.point[x], 0.0, kTol);
  EXPECT_NEAR(result.point[y], 5.0, kTol);
}

TEST(SimplexTest, DegenerateInstanceTerminates) {
  // A classic degenerate LP; the Bland fallback must terminate it.
  Model model;
  int x1 = model.AddVariable("x1", VarType::kContinuous, 0, 100);
  int x2 = model.AddVariable("x2", VarType::kContinuous, 0, 100);
  int x3 = model.AddVariable("x3", VarType::kContinuous, 0, 100);
  model.AddRow("r1", {{x1, 0.5}, {x2, -5.5}, {x3, -2.5}}, RowSense::kLe, 0);
  model.AddRow("r2", {{x1, 0.5}, {x2, -1.5}, {x3, -0.5}}, RowSense::kLe, 0);
  model.AddRow("r3", {{x1, 1.0}}, RowSense::kLe, 1);
  model.SetObjective({{x1, -10.0}, {x2, 57.0}, {x3, 9.0}}, 0,
                     ObjectiveSense::kMinimize);
  LpResult result = SolveLpRelaxation(model);
  ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal);
  // x1 = 1 is worth -10 but forces 1.5·x2 + 0.5·x3 >= 0.5 through r2; the
  // cheapest cover is x3 = 1 (cost 9), so the optimum is -1.
  EXPECT_NEAR(result.objective, -1.0, 1e-4);
}

// --- Branch and bound ----------------------------------------------------

TEST(BranchAndBoundTest, PureLpPassesThrough) {
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 4);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMaximize);
  MilpResult result = SolveMilp(model);
  ASSERT_EQ(result.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 4.0, kTol);
}

TEST(BranchAndBoundTest, KnapsackSmall) {
  // max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d <= 14, binaries.
  // Optimum: a=0 b=1 c=1 d=1 → 21.
  Model model;
  int a = model.AddVariable("a", VarType::kBinary, 0, 1);
  int b = model.AddVariable("b", VarType::kBinary, 0, 1);
  int c = model.AddVariable("c", VarType::kBinary, 0, 1);
  int d = model.AddVariable("d", VarType::kBinary, 0, 1);
  model.AddRow("cap", {{a, 5.0}, {b, 7.0}, {c, 4.0}, {d, 3.0}}, RowSense::kLe,
               14);
  model.SetObjective({{a, 8.0}, {b, 11.0}, {c, 6.0}, {d, 4.0}}, 0,
                     ObjectiveSense::kMaximize);
  MilpResult result = SolveMilp(model);
  ASSERT_EQ(result.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 21.0, kTol);
  EXPECT_NEAR(result.point[a], 0.0, kTol);
  EXPECT_NEAR(result.point[b], 1.0, kTol);
}

TEST(BranchAndBoundTest, IntegerRounding) {
  // max x + y, 2x + 3y <= 12, x,y integer in [0, 5].
  // LP gives fractional corner; ILP optimum is 5 (e.g. x=3, y=2 or x=5,y=0
  // -> 2*5=10 <= 12 so x=5,y=0 gives 5; x=3,y=2 gives 5 too).
  Model model;
  int x = model.AddVariable("x", VarType::kInteger, 0, 5);
  int y = model.AddVariable("y", VarType::kInteger, 0, 5);
  model.AddRow("cap", {{x, 2.0}, {y, 3.0}}, RowSense::kLe, 12);
  model.SetObjective({{x, 1.0}, {y, 1.0}}, 0, ObjectiveSense::kMaximize);
  MilpResult result = SolveMilp(model);
  ASSERT_EQ(result.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 5.0, kTol);
}

TEST(BranchAndBoundTest, IntegerInfeasible) {
  // 2x = 3 with x integer: LP feasible (x=1.5) but no integer solution.
  Model model;
  int x = model.AddVariable("x", VarType::kInteger, 0, 10);
  model.AddRow("odd", {{x, 2.0}}, RowSense::kEq, 3);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  EXPECT_EQ(SolveMilp(model).status, MilpResult::SolveStatus::kInfeasible);
}

TEST(BranchAndBoundTest, BigMIndicatorPattern) {
  // The S*(AC) pattern in miniature: z must move from v=5 to satisfy z = 9;
  // the indicator delta must flip to 1, objective (min delta) = 1.
  Model model;
  int z = model.AddVariable("z", VarType::kInteger, -100, 100);
  int y = model.AddVariable("y", VarType::kInteger, -105, 105);
  int d = model.AddVariable("d", VarType::kBinary, 0, 1);
  model.AddRow("def_y", {{y, 1.0}, {z, -1.0}}, RowSense::kEq, -5);  // y=z-5
  model.AddRow("pos", {{y, 1.0}, {d, -105.0}}, RowSense::kLe, 0);
  model.AddRow("neg", {{y, -1.0}, {d, -105.0}}, RowSense::kLe, 0);
  model.AddRow("target", {{z, 1.0}}, RowSense::kEq, 9);
  model.SetObjective({{d, 1.0}}, 0, ObjectiveSense::kMinimize);
  MilpResult result = SolveMilp(model);
  ASSERT_EQ(result.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 1.0, kTol);
  EXPECT_NEAR(result.point[z], 9.0, kTol);
  EXPECT_NEAR(result.point[y], 4.0, kTol);
}

TEST(BranchAndBoundTest, DepthFirstMatchesBestFirst) {
  Model model;
  int x = model.AddVariable("x", VarType::kInteger, 0, 7);
  int y = model.AddVariable("y", VarType::kInteger, 0, 7);
  model.AddRow("r1", {{x, 3.0}, {y, 5.0}}, RowSense::kLe, 22);
  model.AddRow("r2", {{x, 4.0}, {y, 2.0}}, RowSense::kLe, 19);
  model.SetObjective({{x, 5.0}, {y, 4.0}}, 0, ObjectiveSense::kMaximize);
  MilpOptions depth;
  depth.search.node_order = NodeOrder::kDepthFirst;
  MilpResult best_first = SolveMilp(model);
  MilpResult depth_first = SolveMilp(model, depth);
  ASSERT_EQ(best_first.status, MilpResult::SolveStatus::kOptimal);
  ASSERT_EQ(depth_first.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(best_first.objective, depth_first.objective, kTol);
}

TEST(BranchAndBoundTest, NodeLimitReported) {
  Model model;
  // A 12-binary equality-packing instance that needs some branching.
  std::vector<int> vars;
  std::vector<LinearTerm> row, obj;
  for (int i = 0; i < 12; ++i) {
    int v = model.AddVariable("b" + std::to_string(i), VarType::kBinary, 0, 1);
    vars.push_back(v);
    row.push_back({v, static_cast<double>(2 * i + 3)});
    obj.push_back({v, 1.0});
  }
  model.AddRow("pack", row, RowSense::kEq, 41);
  model.SetObjective(obj, 0, ObjectiveSense::kMinimize);
  MilpOptions options;
  options.search.max_nodes = 1;
  options.search.rounding_heuristic = false;
  MilpResult result = SolveMilp(model, options);
  EXPECT_EQ(result.status, MilpResult::SolveStatus::kNodeLimit);
}

// --- Exhaustive baseline agreement (randomized property test) ------------

class SolverAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreementTest, BranchAndBoundMatchesExhaustive) {
  Rng rng(1234 + GetParam());
  // Random model: 6 binaries, 2 continuous, 4 random <= rows, random
  // objective. Both solvers must agree on optimal objective (or both report
  // infeasible).
  Model model;
  std::vector<int> vars;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(
        model.AddVariable("b" + std::to_string(i), VarType::kBinary, 0, 1));
  }
  for (int i = 0; i < 2; ++i) {
    vars.push_back(model.AddVariable("x" + std::to_string(i),
                                     VarType::kContinuous, -5, 5));
  }
  for (int r = 0; r < 4; ++r) {
    std::vector<LinearTerm> terms;
    for (int v : vars) {
      if (rng.Bernoulli(0.6)) {
        terms.push_back({v, static_cast<double>(rng.UniformInt(-4, 4))});
      }
    }
    if (terms.empty()) continue;
    model.AddRow("r" + std::to_string(r), terms,
                 rng.Bernoulli(0.3) ? RowSense::kGe : RowSense::kLe,
                 static_cast<double>(rng.UniformInt(-6, 10)));
  }
  std::vector<LinearTerm> objective;
  for (int v : vars) {
    objective.push_back({v, static_cast<double>(rng.UniformInt(-5, 5))});
  }
  model.SetObjective(objective, 0, ObjectiveSense::kMinimize);

  MilpResult bb = SolveMilp(model);
  MilpResult ex = SolveByBinaryEnumeration(model);
  ASSERT_EQ(bb.status == MilpResult::SolveStatus::kOptimal,
            ex.status == MilpResult::SolveStatus::kOptimal);
  if (bb.status == MilpResult::SolveStatus::kOptimal) {
    EXPECT_NEAR(bb.objective, ex.objective, 1e-5)
        << "disagreement on seed " << GetParam();
    EXPECT_TRUE(IsFeasiblePoint(model, bb.point, 1e-5));
    EXPECT_TRUE(IsFeasiblePoint(model, ex.point, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, SolverAgreementTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace dart::milp
