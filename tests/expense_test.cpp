// Tests for the expense-report fixture: consistency by construction across
// the three-level hierarchy, real-valued repair end to end, and the deeper
// error-propagation chains the third level introduces.

#include <gtest/gtest.h>

#include "constraints/eval.h"
#include "constraints/parser.h"
#include "core/pipeline.h"
#include "ocr/expense.h"
#include "ocr/noise.h"
#include "repair/engine.h"

namespace dart::ocr {
namespace {

cons::ConstraintSet ParseProgram(const rel::Database& db) {
  cons::ConstraintSet constraints;
  Status status = cons::ParseConstraintProgram(
      db.Schema(), ExpenseFixture::ConstraintProgram(), &constraints);
  DART_CHECK_MSG(status.ok(), status.ToString());
  return constraints;
}

class ExpenseShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(ExpenseShapeTest, GeneratedReportsAreConsistent) {
  Rng rng(60000 + GetParam());
  ExpenseOptions options;
  options.num_months = 1 + GetParam() % 4;
  options.categories_per_month = 1 + GetParam() % 3;
  options.items_per_category = 1 + (GetParam() / 2) % 4;
  auto db = ExpenseFixture::Random(options, &rng);
  ASSERT_TRUE(db.ok());
  cons::ConstraintSet constraints = ParseProgram(*db);
  cons::ConsistencyChecker checker(&constraints);
  auto consistent = checker.IsConsistent(*db);
  ASSERT_TRUE(consistent.ok());
  EXPECT_TRUE(*consistent);
  // months × (cats × (items + 1) + 1) + 1 grand row.
  const size_t expected =
      static_cast<size_t>(options.num_months) *
          (static_cast<size_t>(options.categories_per_month) *
               (options.items_per_category + 1) +
           1) +
      1;
  EXPECT_EQ(db->FindRelation("Expense")->size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ExpenseShapeTest, ::testing::Range(0, 8));

TEST(ExpenseTest, SingleLineErrorRepairsMinimally) {
  Rng rng(61);
  auto truth = ExpenseFixture::Random({}, &rng);
  ASSERT_TRUE(truth.ok());
  rel::Database corrupted = truth->Clone();
  // Corrupt one line item (+10.00): breaks its category sum only; a
  // single-change repair exists (restore it or compensate within the
  // category).
  auto value = corrupted.ValueAt({"Expense", 0, 4});
  ASSERT_TRUE(value.ok());
  ASSERT_TRUE(corrupted
                  .UpdateCell({"Expense", 0, 4},
                              rel::Value(value->AsReal() + 10.0))
                  .ok());
  cons::ConstraintSet constraints = ParseProgram(corrupted);
  repair::RepairEngine engine;
  auto outcome = engine.ComputeRepair(corrupted, constraints);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->repair.cardinality(), 1u);
  auto repaired = outcome->repair.Applied(corrupted);
  ASSERT_TRUE(repaired.ok());
  cons::ConsistencyChecker checker(&constraints);
  EXPECT_TRUE(*checker.IsConsistent(*repaired));
}

TEST(ExpenseTest, CategoryTotalErrorPropagatesThreeLevels) {
  Rng rng(62);
  auto truth = ExpenseFixture::Random({}, &rng);
  ASSERT_TRUE(truth.ok());
  rel::Database corrupted = truth->Clone();
  // Corrupting a CATEGORY TOTAL breaks level 1 (its items) and level 2 (the
  // month sum): the unique single-change repair restores it. Category total
  // of month 1, category 1 sits right after its items.
  const rel::Relation* relation = corrupted.FindRelation("Expense");
  size_t cat_total_row = 0;
  for (size_t i = 0; i < relation->size(); ++i) {
    if (relation->At(i, 3) == rel::Value("cat")) {
      cat_total_row = i;
      break;
    }
  }
  auto value = corrupted.ValueAt({"Expense", cat_total_row, 4});
  ASSERT_TRUE(value.ok());
  ASSERT_TRUE(corrupted
                  .UpdateCell({"Expense", cat_total_row, 4},
                              rel::Value(value->AsReal() + 25.0))
                  .ok());
  cons::ConstraintSet constraints = ParseProgram(corrupted);
  cons::ConsistencyChecker checker(&constraints);
  auto violations = checker.Check(corrupted);
  ASSERT_TRUE(violations.ok());
  EXPECT_EQ(violations->size(), 2u);  // cat_sum + month_sum
  repair::RepairEngine engine;
  auto outcome = engine.ComputeRepair(corrupted, constraints);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->repair.cardinality(), 1u);
  EXPECT_EQ(outcome->repair.updates()[0].cell,
            (rel::CellRef{"Expense", cat_total_row, 4}));
  EXPECT_NEAR(outcome->repair.updates()[0].new_value.AsReal(),
              value->AsReal(), 1e-6);
}

TEST(ExpenseTest, EndToEndPipelineWithRealAmounts) {
  Rng rng(63);
  ExpenseOptions options;
  options.num_months = 2;
  auto truth = ExpenseFixture::Random(options, &rng);
  ASSERT_TRUE(truth.ok());
  core::AcquisitionMetadata metadata;
  auto catalog = ExpenseFixture::BuildCatalog(*truth);
  auto mapping = ExpenseFixture::BuildMapping(*truth);
  ASSERT_TRUE(catalog.ok() && mapping.ok());
  metadata.catalog = std::move(catalog).value();
  metadata.patterns = ExpenseFixture::BuildPatterns();
  metadata.mappings = {std::move(mapping).value()};
  metadata.constraint_program = ExpenseFixture::ConstraintProgram();
  auto pipeline = core::DartPipeline::Create(std::move(metadata));
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  auto outcome = pipeline->Submit(
      core::ProcessRequest::FromHtml(ExpenseFixture::RenderHtml(*truth)));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->violations.empty());
  EXPECT_EQ(*outcome->acquisition.database.CountDifferences(*truth), 0u);

  // Now with one numeric corruption in the rendered document.
  rel::Database corrupted = truth->Clone();
  auto injected = InjectMeasureErrors(&corrupted, 1, &rng);
  ASSERT_TRUE(injected.ok());
  auto noisy_outcome =
      pipeline->Submit(
          core::ProcessRequest::FromHtml(ExpenseFixture::RenderHtml(corrupted)));
  ASSERT_TRUE(noisy_outcome.ok()) << noisy_outcome.status().ToString();
  EXPECT_FALSE(noisy_outcome->violations.empty());
  EXPECT_GE(noisy_outcome->repair.repair.cardinality(), 1u);
  cons::ConsistencyChecker checker(&pipeline->constraints());
  EXPECT_TRUE(*checker.IsConsistent(noisy_outcome->repaired));
}

TEST(ExpenseTest, SupervisedLoopRecoversRealValues) {
  Rng rng(64);
  auto truth = ExpenseFixture::Random({}, &rng);
  ASSERT_TRUE(truth.ok());
  rel::Database corrupted = truth->Clone();
  auto injected = InjectMeasureErrors(&corrupted, 3, &rng);
  ASSERT_TRUE(injected.ok());
  cons::ConstraintSet constraints = ParseProgram(corrupted);
  validation::SimulatedOperator op(&*truth);
  auto session =
      validation::RunValidationSession(corrupted, constraints, op);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_TRUE(session->converged);
  EXPECT_EQ(*session->repaired.CountDifferences(*truth), 0u);
}

}  // namespace
}  // namespace dart::ocr
