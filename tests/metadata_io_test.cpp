// Tests for the metadata file format: a complete cash-budget metadata file
// parses into a working pipeline, Serialize∘Parse is a fixed point, and
// malformed files produce named parse errors.

#include <gtest/gtest.h>

#include "core/metadata_io.h"
#include "core/pipeline.h"
#include "ocr/cash_budget.h"

namespace dart::core {
namespace {

const char* kCashBudgetMetadata = R"(
# DART acquisition metadata for cash-budget documents (Fig. 1).
domain Section: 'Receipts', 'Disbursements', 'Balance';
domain Subsection: 'beginning cash', 'cash sales', 'receivables',
  'total cash receipts', 'payment of accounts', 'capital expenditure',
  'long-term financing', 'total disbursements', 'net cash inflow',
  'ending cash balance';

specialize 'beginning cash' -> 'Receipts';
specialize 'cash sales' -> 'Receipts';
specialize 'receivables' -> 'Receipts';
specialize 'total cash receipts' -> 'Receipts';
specialize 'payment of accounts' -> 'Disbursements';
specialize 'capital expenditure' -> 'Disbursements';
specialize 'long-term financing' -> 'Disbursements';
specialize 'total disbursements' -> 'Disbursements';
specialize 'net cash inflow' -> 'Balance';
specialize 'ending cash balance' -> 'Balance';

pattern cash-budget-row:
  integer Year,
  domain Section as Section,
  domain Subsection as Subsection specializes Section,
  integer Value;

relation CashBudget(Year: int, Section: string, Subsection: string,
                    Type: string, Value: measure int):
  Year from Year,
  Section from Section,
  Subsection from Subsection,
  Type classify Subsection (
    'beginning cash' -> 'drv', 'cash sales' -> 'det',
    'receivables' -> 'det', 'total cash receipts' -> 'aggr',
    'payment of accounts' -> 'det', 'capital expenditure' -> 'det',
    'long-term financing' -> 'det', 'total disbursements' -> 'aggr',
    'net cash inflow' -> 'drv', 'ending cash balance' -> 'drv'),
  Value from Value
  for patterns cash-budget-row;

constraints:
agg chi1(x, y, z) := sum(Value) from CashBudget
    where Section = x and Year = y and Type = z;
agg chi2(x, y) := sum(Value) from CashBudget
    where Year = x and Subsection = y;
constraint c1: CashBudget(y, x, _, _, _)
    => chi1(x, y, 'det') - chi1(x, y, 'aggr') = 0;
constraint c2: CashBudget(x, _, _, _, _)
    => chi2(x, 'net cash inflow') - chi2(x, 'total cash receipts')
       + chi2(x, 'total disbursements') = 0;
constraint c3: CashBudget(x, _, _, _, _)
    => chi2(x, 'ending cash balance') - chi2(x, 'beginning cash')
       - chi2(x, 'net cash inflow') = 0;
end constraints
)";

TEST(MetadataIoTest, ParsesCompleteFile) {
  auto metadata = ParseMetadata(kCashBudgetMetadata);
  ASSERT_TRUE(metadata.ok()) << metadata.status().ToString();
  EXPECT_TRUE(metadata->catalog.HasDomain("Section"));
  EXPECT_TRUE(metadata->catalog.HasDomain("Subsection"));
  EXPECT_EQ(metadata->catalog.ItemsOf("Subsection")->size(), 10u);
  EXPECT_TRUE(
      metadata->catalog.IsSpecializationOf("cash sales", "Receipts"));
  ASSERT_EQ(metadata->patterns.size(), 1u);
  ASSERT_EQ(metadata->patterns[0].cells.size(), 4u);
  EXPECT_EQ(metadata->patterns[0].cells[2].specialization_of, 1u);
  ASSERT_EQ(metadata->mappings.size(), 1u);
  EXPECT_EQ(metadata->mappings[0].schema.ToString(),
            "CashBudget(Year:Int, Section:String, Subsection:String, "
            "Type:String, Value:Int*)");
  EXPECT_EQ(metadata->mappings[0].pattern_names.count("cash-budget-row"), 1u);
  EXPECT_NE(metadata->constraint_program.find("chi1"), std::string::npos);
}

TEST(MetadataIoTest, ParsedMetadataDrivesTheFullPipeline) {
  auto metadata = ParseMetadata(kCashBudgetMetadata);
  ASSERT_TRUE(metadata.ok());
  auto pipeline = DartPipeline::Create(std::move(metadata).value());
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  auto acquired = ocr::CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(acquired.ok());
  auto outcome =
      pipeline->Submit(core::ProcessRequest::FromHtml(
          ocr::CashBudgetFixture::RenderHtml(*acquired)));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->repair.repair.cardinality(), 1u);
  EXPECT_EQ(outcome->repair.repair.updates()[0].new_value, rel::Value(220));
}

TEST(MetadataIoTest, SerializeParseIsAFixedPoint) {
  auto metadata = ParseMetadata(kCashBudgetMetadata);
  ASSERT_TRUE(metadata.ok());
  const std::string first = SerializeMetadata(*metadata);
  auto reparsed = ParseMetadata(first);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const std::string second = SerializeMetadata(*reparsed);
  EXPECT_EQ(first, second);
  // And the re-parsed bundle still builds a valid pipeline.
  EXPECT_TRUE(DartPipeline::Create(std::move(reparsed).value()).ok());
}

TEST(MetadataIoTest, ConstantSourcesRoundTrip) {
  const char* text = R"(
domain D: 'x';
pattern p: domain D as It, integer N;
relation R(Tag: string, N: measure int):
  Tag constant 'fixed',
  N from N;
constraints:
end constraints
)";
  auto metadata = ParseMetadata(text);
  ASSERT_TRUE(metadata.ok()) << metadata.status().ToString();
  ASSERT_EQ(metadata->mappings[0].sources[0].kind,
            dbgen::AttributeSource::Kind::kConstant);
  EXPECT_EQ(metadata->mappings[0].sources[0].constant_text, "fixed");
  auto reparsed = ParseMetadata(SerializeMetadata(*metadata));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
}

TEST(MetadataIoTest, ErrorsAreNamed) {
  EXPECT_FALSE(ParseMetadata("domain ;").ok());
  EXPECT_FALSE(ParseMetadata("domain D: 'a'").ok());  // missing ';'
  EXPECT_FALSE(ParseMetadata("specialize 'a' -> 'b';").ok());  // unknown items
  EXPECT_FALSE(ParseMetadata("pattern p: integer;").ok());     // no headline
  EXPECT_FALSE(
      ParseMetadata("pattern p: domain D as H specializes Z, integer N;")
          .ok());  // forward specializes
  EXPECT_FALSE(ParseMetadata("constraints:\n").ok());  // unterminated block
  EXPECT_FALSE(
      ParseMetadata("relation R(A: int): B from H;\nconstraints:\nend "
                    "constraints")
          .ok());  // source names unknown attribute
  // Missing source for an attribute.
  Status status = ParseMetadata(
      "relation R(A: int, B: int): A from H;\nconstraints:\nend constraints")
                      .status();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST(MetadataIoTest, TablePositionsRoundTrip) {
  const char* text = R"(
domain D: 'x';
tables 0, 2;
pattern p: domain D as It, integer N;
relation R(Tag: string, N: measure int):
  Tag constant 'fixed',
  N from N;
constraints:
end constraints
)";
  auto metadata = ParseMetadata(text);
  ASSERT_TRUE(metadata.ok()) << metadata.status().ToString();
  EXPECT_EQ(metadata->table_positions, (std::set<size_t>{0, 2}));
  auto reparsed = ParseMetadata(SerializeMetadata(*metadata));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->table_positions, (std::set<size_t>{0, 2}));
  EXPECT_FALSE(ParseMetadata("tables -1;").ok());
  EXPECT_FALSE(ParseMetadata("tables x;").ok());
}

TEST(MetadataIoTest, DuplicateDomainRejected) {
  EXPECT_FALSE(ParseMetadata("domain D: 'a';\ndomain D: 'b';").ok());
}

}  // namespace
}  // namespace dart::core
