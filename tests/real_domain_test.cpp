// Tests for real-valued (R-domain) measure attributes: Sec. 5 notes the
// problem is MILP when domains are R and ILP when restricted to Z; DART
// supports both. Also covers the require_nonnegative translator option.

#include <gtest/gtest.h>

#include <cmath>

#include "constraints/eval.h"
#include "constraints/parser.h"
#include "repair/engine.h"
#include "repair/translator.h"

namespace dart::repair {
namespace {

/// Weights(Item:String, Kind:String, Grams:Real*) — a parcel manifest where
/// item weights must sum to the declared total.
rel::Database MakeParcelDb(double item1, double item2, double total) {
  auto schema = rel::RelationSchema::Create(
      "Weights", {{"Item", rel::Domain::kString, false},
                  {"Kind", rel::Domain::kString, false},
                  {"Grams", rel::Domain::kReal, true}});
  DART_CHECK(schema.ok());
  rel::Database db;
  DART_CHECK(db.AddRelation(*schema).ok());
  rel::Relation* relation = db.FindRelation("Weights");
  DART_CHECK(relation
                 ->Insert({rel::Value("bolts"), rel::Value("item"),
                           rel::Value(item1)})
                 .ok());
  DART_CHECK(relation
                 ->Insert({rel::Value("nuts"), rel::Value("item"),
                           rel::Value(item2)})
                 .ok());
  DART_CHECK(relation
                 ->Insert({rel::Value("declared"), rel::Value("total"),
                           rel::Value(total)})
                 .ok());
  return db;
}

cons::ConstraintSet ParcelConstraints(const rel::Database& db) {
  cons::ConstraintSet constraints;
  Status status = cons::ParseConstraintProgram(db.Schema(), R"(
agg bykind(k) := sum(Grams) from Weights where Kind = k;
constraint sum_matches: Weights(_, _, _) => bykind('item') - bykind('total') = 0;
)", &constraints);
  DART_CHECK_MSG(status.ok(), status.ToString());
  return constraints;
}

TEST(RealDomainTest, TranslationUsesContinuousVariables) {
  rel::Database db = MakeParcelDb(1.25, 2.5, 4.0);  // inconsistent by 0.25
  cons::ConstraintSet constraints = ParcelConstraints(db);
  auto translation = TranslateToMilp(db, constraints);
  ASSERT_TRUE(translation.ok()) << translation.status().ToString();
  for (int z : translation->z_vars) {
    EXPECT_EQ(translation->model.variable(z).type,
              milp::VarType::kContinuous);
  }
}

TEST(RealDomainTest, FractionalRepairFound) {
  rel::Database db = MakeParcelDb(1.25, 2.5, 4.0);
  cons::ConstraintSet constraints = ParcelConstraints(db);
  RepairEngine engine;
  auto outcome = engine.ComputeRepair(db, constraints);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->repair.cardinality(), 1u);
  const AtomicUpdate& update = outcome->repair.updates()[0];
  // Any single-cell fix works; whichever cell was chosen, the repaired sum
  // must balance exactly (in R, not rounded).
  auto repaired = outcome->repair.Applied(db);
  ASSERT_TRUE(repaired.ok());
  cons::ConsistencyChecker checker(&constraints);
  EXPECT_TRUE(*checker.IsConsistent(*repaired));
  EXPECT_TRUE(update.new_value.is_real() || update.new_value.is_numeric());
}

TEST(RealDomainTest, MixedIntAndRealRelations) {
  // Two relations, one Z-domain and one R-domain, constrained against each
  // other through steady constraints — z variables keep per-cell typing.
  auto int_schema = rel::RelationSchema::Create(
      "Counts", {{"Kind", rel::Domain::kString, false},
                 {"N", rel::Domain::kInt, true}});
  auto real_schema = rel::RelationSchema::Create(
      "Mass", {{"Kind", rel::Domain::kString, false},
               {"Grams", rel::Domain::kReal, true}});
  ASSERT_TRUE(int_schema.ok() && real_schema.ok());
  rel::Database db;
  ASSERT_TRUE(db.AddRelation(*int_schema).ok());
  ASSERT_TRUE(db.AddRelation(*real_schema).ok());
  ASSERT_TRUE(db.FindRelation("Counts")
                  ->Insert({rel::Value("a"), rel::Value(3)})
                  .ok());
  ASSERT_TRUE(db.FindRelation("Mass")
                  ->Insert({rel::Value("a"), rel::Value(2.5)})
                  .ok());
  cons::ConstraintSet constraints;
  // 2·sum(N over 'a') − sum(Grams over 'a') = 0  →  6 ≠ 2.5: inconsistent.
  Status status = cons::ParseConstraintProgram(db.Schema(), R"(
agg n(k) := sum(N) from Counts where Kind = k;
agg g(k) := sum(Grams) from Mass where Kind = k;
constraint ratio: Counts(k, _) => 2*n(k) - g(k) = 0;
)", &constraints);
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto translation = TranslateToMilp(db, constraints);
  ASSERT_TRUE(translation.ok()) << translation.status().ToString();
  ASSERT_EQ(translation->cells.size(), 2u);
  EXPECT_EQ(translation->model.variable(translation->z_vars[0]).type,
            milp::VarType::kInteger);  // Counts.N
  EXPECT_EQ(translation->model.variable(translation->z_vars[1]).type,
            milp::VarType::kContinuous);  // Mass.Grams

  RepairEngine engine;
  auto outcome = engine.ComputeRepair(db, constraints);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->repair.cardinality(), 1u);
  auto repaired = outcome->repair.Applied(db);
  ASSERT_TRUE(repaired.ok());
  cons::ConsistencyChecker checker(&constraints);
  EXPECT_TRUE(*checker.IsConsistent(*repaired));
}

TEST(RealDomainTest, RequireNonnegativeRestrictsRepairs) {
  // items sum 3.75, declared total -1: without the sign restriction a repair
  // could set the total to 3.75 or push items negative; with
  // require_nonnegative every z (incl. the repaired ones) must stay >= 0.
  rel::Database db = MakeParcelDb(1.25, 2.5, -1.0);
  cons::ConstraintSet constraints = ParcelConstraints(db);
  RepairEngineOptions options;
  options.translator.require_nonnegative = true;
  RepairEngine engine(options);
  auto outcome = engine.ComputeRepair(db, constraints);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  auto repaired = outcome->repair.Applied(db);
  ASSERT_TRUE(repaired.ok());
  for (const rel::CellRef& cell : repaired->MeasureCells()) {
    EXPECT_GE(repaired->ValueAt(cell)->AsReal(), -1e-9);
  }
  cons::ConsistencyChecker checker(&constraints);
  EXPECT_TRUE(*checker.IsConsistent(*repaired));
}

TEST(RealDomainTest, NonnegativeWithNegativeCurrentValueStillSolves) {
  // The current value -1 lies outside the [0, M] box; the translator must
  // not crash — the repair simply has to move that cell.
  rel::Database db = MakeParcelDb(1.0, 2.0, -1.0);
  cons::ConstraintSet constraints = ParcelConstraints(db);
  TranslatorOptions options;
  options.require_nonnegative = true;
  auto translation = TranslateToMilp(db, constraints, options);
  // Either a clean translation whose solution moves the cell, or a
  // diagnosed failure — but never an abort. Current behaviour: the value
  // box check fails gracefully.
  if (translation.ok()) {
    milp::MilpResult solved = milp::SolveMilp(translation->model);
    EXPECT_EQ(solved.status, milp::MilpResult::SolveStatus::kOptimal);
  } else {
    EXPECT_FALSE(translation.status().message().empty());
  }
}

}  // namespace
}  // namespace dart::repair
