// Tests for DartPipeline::SubmitBatch (DESIGN.md "Batch ingestion"): the
// fused N-document path must be observably equivalent to N independent
// Submit() calls — identical acquisitions, violations, repairs, and
// repaired instances on the serial path — while failures stay per-document,
// the shared grounding happens exactly once per document, slots carry their
// request ids, and the deprecated Process*/ProcessBatch* wrappers stay
// behaviorally identical to the unified entry points.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "constraints/eval.h"
#include "core/pipeline.h"
#include "obs/context.h"
#include "ocr/cash_budget.h"
#include "ocr/noise.h"
#include "util/random.h"

namespace dart::core {
namespace {

using ocr::CashBudgetFixture;

Result<DartPipeline> MakePipeline(const rel::Database& reference,
                                  PipelineOptions options,
                                  const std::string& extra_program = "") {
  AcquisitionMetadata metadata;
  DART_ASSIGN_OR_RETURN(metadata.catalog,
                        CashBudgetFixture::BuildCatalog(reference));
  metadata.patterns = CashBudgetFixture::BuildPatterns();
  DART_ASSIGN_OR_RETURN(dbgen::RelationMapping mapping,
                        CashBudgetFixture::BuildMapping(reference));
  metadata.mappings = {std::move(mapping)};
  metadata.constraint_program =
      CashBudgetFixture::ConstraintProgram() + extra_program;
  return DartPipeline::Create(std::move(metadata), options);
}

/// `num_docs` rendered cash-budget documents of varying size (2–4 years),
/// each with `errors_for(d)` injected measure errors (0 = consistent).
std::vector<std::string> MakeBatchHtmls(uint64_t seed, int num_docs,
                                        const std::vector<size_t>& errors) {
  Rng rng(seed);
  std::vector<std::string> htmls;
  for (int d = 0; d < num_docs; ++d) {
    ocr::CashBudgetOptions options;
    options.num_years = 2 + static_cast<int>((seed + d) % 3);
    rel::Database db = CashBudgetFixture::Random(options, &rng).value();
    const size_t count = errors[d % errors.size()];
    if (count > 0) {
      EXPECT_TRUE(ocr::InjectMeasureErrors(&db, count, &rng).ok());
    }
    htmls.push_back(CashBudgetFixture::RenderHtml(db));
  }
  return htmls;
}

void ExpectDocEqualsSerial(const Result<ProcessOutcome>& batch_doc,
                           const Result<ProcessOutcome>& serial) {
  ASSERT_EQ(batch_doc.ok(), serial.ok())
      << batch_doc.status().ToString() << " vs " << serial.status().ToString();
  if (!serial.ok()) {
    EXPECT_EQ(batch_doc.status(), serial.status());
    return;
  }
  EXPECT_EQ(*batch_doc->acquisition.database.CountDifferences(
                serial->acquisition.database),
            0u);
  ASSERT_EQ(batch_doc->violations.size(), serial->violations.size());
  for (size_t v = 0; v < serial->violations.size(); ++v) {
    EXPECT_EQ(batch_doc->violations[v].ToString(),
              serial->violations[v].ToString());
  }
  EXPECT_EQ(batch_doc->repair.already_consistent,
            serial->repair.already_consistent);
  const auto& batch_updates = batch_doc->repair.repair.updates();
  const auto& serial_updates = serial->repair.repair.updates();
  ASSERT_EQ(batch_updates.size(), serial_updates.size());
  for (size_t u = 0; u < serial_updates.size(); ++u) {
    EXPECT_TRUE(batch_updates[u].cell == serial_updates[u].cell)
        << batch_updates[u].ToString() << " vs " << serial_updates[u].ToString();
    EXPECT_EQ(batch_updates[u].old_value, serial_updates[u].old_value);
    EXPECT_EQ(batch_updates[u].new_value, serial_updates[u].new_value);
  }
  EXPECT_EQ(*batch_doc->repaired.CountDifferences(serial->repaired), 0u);
}

// On the serial path (num_threads = 1) the batch must be bit-identical to
// the per-document path: same acquisitions, violations (text and order),
// update lists, and repaired instances, across 30 seeds of mixed-size
// mixed-error batches.
TEST(BatchPipelineTest, MatchesSerialProcessAcrossSeeds) {
  Rng ref_rng(7);
  rel::Database reference =
      CashBudgetFixture::Random({}, &ref_rng).value();
  PipelineOptions options;
  options.engine.milp.search.num_threads = 1;
  auto pipeline = MakePipeline(reference, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const std::vector<std::string> htmls =
        MakeBatchHtmls(seed, 3, {1, 2, 1});
    BatchOutcome batch =
        pipeline->SubmitBatch(BatchRequest::FromHtmls(htmls));
    ASSERT_EQ(batch.documents.size(), htmls.size());
    EXPECT_GT(batch.stats.docs_per_second, 0);
    for (size_t i = 0; i < htmls.size(); ++i) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " doc " +
                   std::to_string(i));
      EXPECT_EQ(batch.documents[i].id, "#" + std::to_string(i));
      ExpectDocEqualsSerial(
          batch.documents[i].result,
          pipeline->Submit(ProcessRequest::FromHtml(htmls[i])));
    }
  }
}

// With a threaded pool the per-component optima may tie differently, so the
// guarantee weakens to: same repair cardinality, and a repaired instance
// that satisfies the constraint program.
TEST(BatchPipelineTest, ThreadedBatchMatchesCardinalityAndConsistency) {
  Rng ref_rng(7);
  rel::Database reference =
      CashBudgetFixture::Random({}, &ref_rng).value();
  PipelineOptions serial_options;
  serial_options.engine.milp.search.num_threads = 1;
  auto serial_pipeline = MakePipeline(reference, serial_options);
  ASSERT_TRUE(serial_pipeline.ok());
  PipelineOptions threaded_options;
  threaded_options.engine.milp.search.num_threads = 4;
  auto threaded_pipeline = MakePipeline(reference, threaded_options);
  ASSERT_TRUE(threaded_pipeline.ok());

  const std::vector<std::string> htmls = MakeBatchHtmls(99, 8, {1, 2});
  BatchOutcome batch =
      threaded_pipeline->SubmitBatch(BatchRequest::FromHtmls(htmls));
  ASSERT_EQ(batch.documents.size(), htmls.size());
  cons::ConsistencyChecker checker(&threaded_pipeline->constraints());
  for (size_t i = 0; i < htmls.size(); ++i) {
    SCOPED_TRACE("doc " + std::to_string(i));
    const auto& doc = batch.documents[i].result;
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    auto serial = serial_pipeline->Submit(ProcessRequest::FromHtml(htmls[i]));
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_EQ(doc->repair.repair.cardinality(),
              serial->repair.repair.cardinality());
    auto residual = checker.Check(doc->repaired);
    ASSERT_TRUE(residual.ok());
    EXPECT_TRUE(residual->empty());
  }
}

// Consistent documents ride through the batch untouched: already_consistent
// set, empty repair, repaired == acquired — exactly like Process().
TEST(BatchPipelineTest, MixedConsistentAndInconsistentBatch) {
  Rng ref_rng(7);
  rel::Database reference =
      CashBudgetFixture::Random({}, &ref_rng).value();
  PipelineOptions options;
  options.engine.milp.search.num_threads = 1;
  auto pipeline = MakePipeline(reference, options);
  ASSERT_TRUE(pipeline.ok());

  // errors pattern {0, 2, 0, 1}: docs 0 and 2 are consistent.
  const std::vector<std::string> htmls = MakeBatchHtmls(5, 4, {0, 2, 0, 1});
  BatchOutcome batch = pipeline->SubmitBatch(BatchRequest::FromHtmls(htmls));
  ASSERT_EQ(batch.documents.size(), 4u);
  for (size_t i : {size_t{0}, size_t{2}}) {
    const auto& doc = batch.documents[i].result;
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_TRUE(doc->violations.empty());
    EXPECT_TRUE(doc->repair.already_consistent);
    EXPECT_TRUE(doc->repair.repair.empty());
    EXPECT_EQ(*doc->repaired.CountDifferences(doc->acquisition.database), 0u);
  }
  for (size_t i : {size_t{1}, size_t{3}}) {
    const auto& doc = batch.documents[i].result;
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_FALSE(doc->violations.empty());
    EXPECT_FALSE(doc->repair.repair.empty());
    ExpectDocEqualsSerial(doc, pipeline->Submit(ProcessRequest::FromHtml(htmls[i])));
  }
}

// A document that fails mid-batch fails alone: its slot carries the same
// error Process() reports for it, and every sibling is repaired as if the
// bad document were never submitted. The failing document is *irreparable*
// — an extra constraint over the steady Year attribute grounds to a
// violated constant row for any document containing year 1999, so its
// translation fails with Infeasible inside the fused repair.
TEST(BatchPipelineTest, FailingDocumentDoesNotPoisonSiblings) {
  Rng ref_rng(7);
  rel::Database reference =
      CashBudgetFixture::Random({}, &ref_rng).value();
  PipelineOptions options;
  options.engine.milp.search.num_threads = 1;
  auto pipeline = MakePipeline(
      reference, options,
      "\nagg yearsum(x) := sum(Year) from CashBudget where Year = x;\n"
      "constraint no99: CashBudget(_, _, _, _, _) => yearsum(1999) <= 0;");
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  std::vector<std::string> htmls = MakeBatchHtmls(11, 3, {1});
  {
    Rng rng(1999);
    ocr::CashBudgetOptions bad_options;
    bad_options.start_year = 1999;
    rel::Database bad = CashBudgetFixture::Random(bad_options, &rng).value();
    htmls[1] = CashBudgetFixture::RenderHtml(bad);
  }
  auto serial_bad = pipeline->Submit(ProcessRequest::FromHtml(htmls[1]));
  ASSERT_FALSE(serial_bad.ok());
  EXPECT_EQ(serial_bad.status().code(), StatusCode::kInfeasible);

  BatchOutcome batch = pipeline->SubmitBatch(BatchRequest::FromHtmls(htmls));
  ASSERT_EQ(batch.documents.size(), 3u);
  ASSERT_FALSE(batch.documents[1].result.ok());
  EXPECT_EQ(batch.documents[1].result.status(), serial_bad.status());
  for (size_t i : {size_t{0}, size_t{2}}) {
    SCOPED_TRACE("doc " + std::to_string(i));
    ExpectDocEqualsSerial(
        batch.documents[i].result,
        pipeline->Submit(ProcessRequest::FromHtml(htmls[i])));
  }
}

TEST(BatchPipelineTest, EmptyBatchIsEmptySuccess) {
  Rng ref_rng(7);
  rel::Database reference =
      CashBudgetFixture::Random({}, &ref_rng).value();
  auto pipeline = MakePipeline(reference, {});
  ASSERT_TRUE(pipeline.ok());
  BatchOutcome batch = pipeline->SubmitBatch(BatchRequest{});
  EXPECT_TRUE(batch.documents.empty());
}

// The shared grounding is built exactly once per document — detection and
// every translate/verify attempt reuse it (counter repair.groundings).
TEST(BatchPipelineTest, GroundsOncePerDocument) {
  Rng ref_rng(7);
  rel::Database reference =
      CashBudgetFixture::Random({}, &ref_rng).value();
  obs::RunContext run;
  PipelineOptions options;
  options.run = &run;
  options.engine.milp.search.num_threads = 1;
  auto pipeline = MakePipeline(reference, options);
  ASSERT_TRUE(pipeline.ok());

  const std::vector<std::string> htmls = MakeBatchHtmls(3, 3, {1, 0, 2});
  const obs::MetricsSnapshot before = run.metrics().Snapshot();
  ASSERT_TRUE(!pipeline->SubmitBatch(BatchRequest::FromHtmls(htmls)).documents.empty());
  const obs::MetricsSnapshot mid = run.metrics().Snapshot();
  EXPECT_EQ(mid.DeltaSince(before).Counter("repair.groundings"), 3);

  // Process() also grounds exactly once for the whole call (detection +
  // every repair attempt + verification included).
  ASSERT_TRUE(pipeline->Submit(ProcessRequest::FromHtml(htmls[0])).ok());
  const obs::MetricsSnapshot after = run.metrics().Snapshot();
  EXPECT_EQ(after.DeltaSince(mid).Counter("repair.groundings"), 1);
}

// The positional overload is Process()-equivalent per document, and a
// document whose geometric reconstruction fails occupies only its own slot.
TEST(BatchPipelineTest, PositionalBatchMatchesPositionalProcess) {
  Rng ref_rng(7);
  rel::Database reference =
      CashBudgetFixture::Random({}, &ref_rng).value();
  PipelineOptions options;
  options.engine.milp.search.num_threads = 1;
  auto pipeline = MakePipeline(reference, options);
  ASSERT_TRUE(pipeline.ok());

  Rng rng(21);
  std::vector<acquire::PositionalDocument> documents;
  for (int d = 0; d < 3; ++d) {
    ocr::CashBudgetOptions doc_options;
    doc_options.num_years = 2 + d % 2;
    rel::Database db = CashBudgetFixture::Random(doc_options, &rng).value();
    ASSERT_TRUE(ocr::InjectMeasureErrors(&db, 1, &rng).ok());
    documents.push_back(CashBudgetFixture::RenderPositional(db));
  }
  BatchRequest request;
  for (size_t i = 0; i < documents.size(); ++i) {
    request.documents.push_back(ProcessRequest::FromPositional(
        documents[i], "scan-" + std::to_string(i)));
  }
  BatchOutcome batch = pipeline->SubmitBatch(request);
  ASSERT_EQ(batch.documents.size(), documents.size());
  for (size_t i = 0; i < documents.size(); ++i) {
    SCOPED_TRACE("doc " + std::to_string(i));
    EXPECT_EQ(batch.documents[i].id, "scan-" + std::to_string(i));
    EXPECT_EQ(batch.Find("scan-" + std::to_string(i)), &batch.documents[i]);
    ExpectDocEqualsSerial(
        batch.documents[i].result,
        pipeline->Submit(ProcessRequest::FromPositional(documents[i])));
  }
}

// The deprecated entry points are thin wrappers: Process / ProcessBatch /
// ProcessBatchPositional must return exactly what the unified Submit /
// SubmitBatch calls they forward to return.
TEST(BatchPipelineTest, DeprecatedWrappersMatchUnifiedApi) {
  Rng ref_rng(7);
  rel::Database reference =
      CashBudgetFixture::Random({}, &ref_rng).value();
  PipelineOptions options;
  options.engine.milp.search.num_threads = 1;
  auto pipeline = MakePipeline(reference, options);
  ASSERT_TRUE(pipeline.ok());

  const std::vector<std::string> htmls = MakeBatchHtmls(13, 3, {1, 0, 2});
  ExpectDocEqualsSerial(pipeline->Process(htmls[0]),
                        pipeline->Submit(ProcessRequest::FromHtml(htmls[0])));
  auto wrapped = pipeline->ProcessBatch(htmls);
  ASSERT_TRUE(wrapped.ok()) << wrapped.status().ToString();
  BatchOutcome unified = pipeline->SubmitBatch(BatchRequest::FromHtmls(htmls));
  ASSERT_EQ(wrapped->documents.size(), unified.documents.size());
  for (size_t i = 0; i < htmls.size(); ++i) {
    SCOPED_TRACE("doc " + std::to_string(i));
    EXPECT_EQ(wrapped->documents[i].id, unified.documents[i].id);
    ExpectDocEqualsSerial(wrapped->documents[i].result,
                          unified.documents[i].result);
  }
}

}  // namespace
}  // namespace dart::core
