// End-to-end tests for the DartPipeline facade (P1 of DESIGN.md): the Fig. 1
// document flows through acquisition, extraction, database generation and
// repair, reproducing the Fig. 3 relation and Example 6's repair; a noisy
// corpus document is recovered by the supervised loop.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "obs/context.h"
#include "ocr/cash_budget.h"
#include "ocr/catalog.h"
#include "ocr/noise.h"
#include "util/random.h"
#include "validation/operator.h"

namespace dart::core {
namespace {

using ocr::CashBudgetFixture;
using ocr::CatalogFixture;

Result<DartPipeline> MakeCashBudgetPipeline(const rel::Database& reference,
                                            PipelineOptions options = {}) {
  AcquisitionMetadata metadata;
  DART_ASSIGN_OR_RETURN(metadata.catalog,
                        CashBudgetFixture::BuildCatalog(reference));
  metadata.patterns = CashBudgetFixture::BuildPatterns();
  DART_ASSIGN_OR_RETURN(dbgen::RelationMapping mapping,
                        CashBudgetFixture::BuildMapping(reference));
  metadata.mappings = {std::move(mapping)};
  metadata.constraint_program = CashBudgetFixture::ConstraintProgram();
  return DartPipeline::Create(std::move(metadata), options);
}

TEST(PipelineTest, Figure1DocumentReproducesFigure3Relation) {
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  auto pipeline = MakeCashBudgetPipeline(*truth);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  // Render the *erroneous* acquisition (the 250 error of Fig. 3).
  auto acquired_db = CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(acquired_db.ok());
  const std::string html = CashBudgetFixture::RenderHtml(*acquired_db);

  auto acquisition = pipeline->Acquire(html);
  ASSERT_TRUE(acquisition.ok()) << acquisition.status().ToString();
  EXPECT_EQ(acquisition->extraction.tables, 2u);
  EXPECT_EQ(acquisition->skipped_rows, 0u);
  // The extracted instance equals Fig. 3, including types from the
  // classification metadata.
  ASSERT_EQ(*acquisition->database.CountDifferences(*acquired_db), 0u);
}

TEST(PipelineTest, ProcessSuggestsExample6Repair) {
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  auto pipeline = MakeCashBudgetPipeline(*truth);
  ASSERT_TRUE(pipeline.ok());
  auto acquired_db = CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(acquired_db.ok());

  auto outcome = pipeline->Submit(
      ProcessRequest::FromHtml(CashBudgetFixture::RenderHtml(*acquired_db)));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // Violations i and ii of Example 1.
  EXPECT_EQ(outcome->violations.size(), 2u);
  // DART "will suggest to change the total cash receipts value for year 2003
  // from 250 to 220".
  ASSERT_EQ(outcome->repair.repair.cardinality(), 1u);
  const repair::AtomicUpdate& update = outcome->repair.repair.updates()[0];
  EXPECT_EQ(update.old_value, rel::Value(250));
  EXPECT_EQ(update.new_value, rel::Value(220));
  // The repaired instance equals the source document's data.
  EXPECT_EQ(*outcome->repaired.CountDifferences(*truth), 0u);
}

TEST(PipelineTest, StringNoiseIsRepairedByWrapperAlone) {
  // Corrupt only strings: the msi() binding fixes them without any MILP
  // involvement; the resulting database is already consistent.
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  auto pipeline = MakeCashBudgetPipeline(*truth);
  ASSERT_TRUE(pipeline.ok());
  Rng rng(12);
  ocr::NoiseModel noise({0.0, 0.35, 1, 1}, &rng);
  const std::string html = CashBudgetFixture::RenderHtml(*truth, &noise);
  ASSERT_GT(noise.strings_corrupted(), 0u);

  auto outcome = pipeline->Submit(ProcessRequest::FromHtml(html));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(*outcome->acquisition.database.CountDifferences(*truth), 0u);
  EXPECT_TRUE(outcome->violations.empty());
  EXPECT_TRUE(outcome->repair.repair.empty());
}

TEST(PipelineTest, SupervisedLoopRecoversNoisyDocument) {
  Rng rng(2024);
  ocr::CashBudgetOptions options;
  options.num_years = 2;
  auto truth = CashBudgetFixture::Random(options, &rng);
  ASSERT_TRUE(truth.ok());
  auto pipeline = MakeCashBudgetPipeline(*truth);
  ASSERT_TRUE(pipeline.ok());
  // Mild numeric + string noise on the rendered document.
  ocr::NoiseModel noise({0.12, 0.15, 1, 1}, &rng);
  const std::string html = CashBudgetFixture::RenderHtml(*truth, &noise);

  validation::SimulatedOperator op(&*truth);
  auto session = pipeline->ProcessSupervised(html, op);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_TRUE(session->converged);
  EXPECT_EQ(*session->repaired.CountDifferences(*truth), 0u);
}

// Regression for the option-propagation seam: a RunContext set only at the
// top level (PipelineOptions::run, nothing on the nested engine/search
// structs) must reach the innermost solver — Create() is the single place
// that fans `run` out, so milp.* counters land in the top-level registry for
// both the one-shot and the supervised path.
TEST(PipelineTest, TopLevelRunContextReachesSolverCounters) {
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  obs::RunContext run;
  PipelineOptions options;
  options.run = &run;  // top level only; options.engine.run stays null
  auto pipeline = MakeCashBudgetPipeline(*truth, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  auto acquired_db = CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(acquired_db.ok());
  const std::string html = CashBudgetFixture::RenderHtml(*acquired_db);
  ASSERT_TRUE(pipeline->Submit(ProcessRequest::FromHtml(html)).ok());
  const obs::MetricsSnapshot after_submit = run.metrics().Snapshot();
  EXPECT_GT(after_submit.Counter("milp.nodes"), 0);
  EXPECT_GT(after_submit.Counter("repair.attempts"), 0);

  // The supervised loop solves through the same engine: its solver effort
  // must accumulate into the same registry (and be read back as deltas).
  validation::SimulatedOperator op(&*truth);
  auto session = pipeline->ProcessSupervised(html, op);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_GT(session->total_nodes, 0);
  EXPECT_GT(run.metrics().Snapshot().DeltaSince(after_submit)
                .Counter("milp.nodes"),
            0);
}

TEST(PipelineTest, CatalogDomainEndToEnd) {
  Rng rng(31337);
  auto truth = CatalogFixture::Random({}, &rng);
  ASSERT_TRUE(truth.ok());
  AcquisitionMetadata metadata;
  auto catalog = CatalogFixture::BuildCatalog(*truth);
  ASSERT_TRUE(catalog.ok());
  metadata.catalog = std::move(catalog).value();
  metadata.patterns = CatalogFixture::BuildPatterns();
  auto mapping = CatalogFixture::BuildMapping(*truth);
  ASSERT_TRUE(mapping.ok());
  metadata.mappings = {std::move(mapping).value()};
  metadata.constraint_program = CatalogFixture::ConstraintProgram();
  auto pipeline = DartPipeline::Create(std::move(metadata));
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  // Corrupt the grand total: its unique card-minimal repair is restoring it
  // (changing any category total instead would break that category's own
  // sum and cost a second update).
  rel::Database corrupted = truth->Clone();
  const rel::Relation* relation = corrupted.FindRelation("Catalog");
  const size_t grand_row = relation->size() - 1;
  const int64_t grand = relation->At(grand_row, 3).AsInt();
  ASSERT_TRUE(corrupted.UpdateCell({"Catalog", grand_row, 3},
                                   rel::Value(grand + 50)).ok());
  auto outcome = pipeline->Submit(
      ProcessRequest::FromHtml(CatalogFixture::RenderHtml(corrupted)));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->violations.empty());
  EXPECT_EQ(outcome->repair.repair.cardinality(), 1u);
  EXPECT_EQ(*outcome->repaired.CountDifferences(*truth), 0u);
}

TEST(PipelineTest, CreateRejectsNonSteadyProgram) {
  auto truth = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(truth.ok());
  AcquisitionMetadata metadata;
  auto catalog = CashBudgetFixture::BuildCatalog(*truth);
  ASSERT_TRUE(catalog.ok());
  metadata.catalog = std::move(catalog).value();
  metadata.patterns = CashBudgetFixture::BuildPatterns();
  auto mapping = CashBudgetFixture::BuildMapping(*truth);
  ASSERT_TRUE(mapping.ok());
  metadata.mappings = {std::move(mapping).value()};
  // WHERE on the measure attribute Value ⇒ not steady.
  metadata.constraint_program =
      "agg bad(x) := sum(Value) from CashBudget where Value = x;\n"
      "constraint k: CashBudget(_, _, _, _, v) => bad(v) <= 10;";
  auto pipeline = DartPipeline::Create(std::move(metadata));
  ASSERT_FALSE(pipeline.ok());
  EXPECT_NE(pipeline.status().message().find("not steady"), std::string::npos);
}

TEST(PipelineTest, CreateRejectsEmptyMetadata) {
  AcquisitionMetadata metadata;
  EXPECT_FALSE(DartPipeline::Create(std::move(metadata)).ok());
}

}  // namespace
}  // namespace dart::core
