// Tests for serve::RepairServer (docs/serving.md): N tenants multiplexed
// over one shared pool must produce results bit-identical to serial
// per-tenant pipelines (at milp num_threads = 1), admission past the queue
// bound must fail fast with kUnavailable + a retry hint (never block, never
// crash), dispatch must round-robin across tenants, Stop() must drain every
// accepted future, and the in-process exporter sinks must observe the
// serve.* metric stream.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "ocr/cash_budget.h"
#include "ocr/noise.h"
#include "serve/server.h"
#include "util/random.h"
#include "validation/operator.h"

namespace dart::serve {
namespace {

using core::BatchOutcome;
using core::BatchRequest;
using core::ProcessOutcome;
using core::ProcessRequest;
using ocr::CashBudgetFixture;

/// Builds the cash-budget metadata for one tenant, seeded so distinct
/// tenants carry distinct reference databases (and therefore distinct
/// pipelines) while sharing the schema.
Result<core::AcquisitionMetadata> MakeMetadata(uint64_t seed,
                                               rel::Database* reference_out) {
  Rng rng(seed);
  DART_ASSIGN_OR_RETURN(rel::Database reference,
                        CashBudgetFixture::Random({}, &rng));
  core::AcquisitionMetadata metadata;
  DART_ASSIGN_OR_RETURN(metadata.catalog,
                        CashBudgetFixture::BuildCatalog(reference));
  metadata.patterns = CashBudgetFixture::BuildPatterns();
  DART_ASSIGN_OR_RETURN(dbgen::RelationMapping mapping,
                        CashBudgetFixture::BuildMapping(reference));
  metadata.mappings = {std::move(mapping)};
  metadata.constraint_program = CashBudgetFixture::ConstraintProgram();
  if (reference_out != nullptr) *reference_out = reference;
  return metadata;
}

/// One rendered document with `errors` injected measure mistakes;
/// `num_years > 0` overrides the seed-derived document size.
std::string MakeHtml(uint64_t seed, size_t errors, int num_years = 0) {
  Rng rng(seed);
  ocr::CashBudgetOptions options;
  options.num_years =
      num_years > 0 ? num_years : 2 + static_cast<int>(seed % 2);
  rel::Database db = CashBudgetFixture::Random(options, &rng).value();
  if (errors > 0) {
    EXPECT_TRUE(ocr::InjectMeasureErrors(&db, errors, &rng).ok());
  }
  return CashBudgetFixture::RenderHtml(db);
}

/// Serial-path pipeline options: deterministic solver so server results can
/// be compared bit-for-bit against direct pipeline calls.
core::PipelineOptions SerialOptions() {
  core::PipelineOptions options;
  options.engine.milp.search.num_threads = 1;
  return options;
}

void ExpectOutcomeEquals(const Result<ProcessOutcome>& served,
                         const Result<ProcessOutcome>& serial) {
  ASSERT_EQ(served.ok(), serial.ok())
      << served.status().ToString() << " vs " << serial.status().ToString();
  if (!serial.ok()) {
    EXPECT_EQ(served.status(), serial.status());
    return;
  }
  EXPECT_EQ(*served->acquisition.database.CountDifferences(
                serial->acquisition.database),
            0u);
  ASSERT_EQ(served->violations.size(), serial->violations.size());
  const auto& served_updates = served->repair.repair.updates();
  const auto& serial_updates = serial->repair.repair.updates();
  ASSERT_EQ(served_updates.size(), serial_updates.size());
  for (size_t u = 0; u < serial_updates.size(); ++u) {
    EXPECT_TRUE(served_updates[u].cell == serial_updates[u].cell);
    EXPECT_EQ(served_updates[u].new_value, serial_updates[u].new_value);
  }
  EXPECT_EQ(*served->repaired.CountDifferences(serial->repaired), 0u);
}

// --- Multi-tenant stress parity ---------------------------------------------

// Four tenants with distinct reference databases submit a mixed workload —
// singles, one batch per tenant, supervised sessions — concurrently through
// the shared pool. Every accepted future must complete, and every result
// must be bit-identical to a direct call on a serial per-tenant pipeline
// (30 seeds spread across the tenants).
TEST(RepairServerTest, MultiTenantStressMatchesSerialPipelines) {
  constexpr int kTenants = 4;
  constexpr uint64_t kSeeds = 30;

  ServerOptions server_options;
  server_options.num_workers = 4;
  server_options.queue_capacity = 256;
  RepairServer server(server_options);

  std::vector<rel::Database> references(kTenants);
  std::vector<std::unique_ptr<core::DartPipeline>> serial(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    auto metadata = MakeMetadata(100 + t, &references[t]);
    ASSERT_TRUE(metadata.ok()) << metadata.status().ToString();
    TenantOptions tenant_options;
    tenant_options.pipeline = SerialOptions();
    auto id = server.AddTenant("tenant" + std::to_string(t), *metadata,
                               tenant_options);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, t);
    // An independent serial pipeline over the same metadata, as ground truth.
    auto re_metadata = MakeMetadata(100 + t, nullptr);
    ASSERT_TRUE(re_metadata.ok());
    auto pipeline = core::DartPipeline::Create(std::move(*re_metadata),
                                               SerialOptions());
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    serial[t] = std::make_unique<core::DartPipeline>(std::move(*pipeline));
  }
  ASSERT_EQ(server.num_tenants(), static_cast<size_t>(kTenants));

  // Singles: seed s goes to tenant s % kTenants.
  struct PendingSingle {
    int tenant;
    std::string html;
    std::future<Result<ProcessOutcome>> future;
  };
  std::vector<PendingSingle> singles;
  for (uint64_t s = 1; s <= kSeeds; ++s) {
    const int t = static_cast<int>(s % kTenants);
    std::string html = MakeHtml(s, 1 + s % 2);
    auto future = server.Submit(t, ProcessRequest::FromHtml(html));
    ASSERT_TRUE(future.ok()) << future.status().ToString();
    singles.push_back({t, std::move(html), std::move(*future)});
  }

  // One 3-document batch per tenant, ids carried through.
  struct PendingBatch {
    int tenant;
    std::vector<std::string> htmls;
    std::future<Result<BatchOutcome>> future;
  };
  std::vector<PendingBatch> batches;
  for (int t = 0; t < kTenants; ++t) {
    BatchRequest request;
    std::vector<std::string> htmls;
    for (int d = 0; d < 3; ++d) {
      htmls.push_back(MakeHtml(1000 + 10 * t + d, d % 2));
      request.documents.push_back(ProcessRequest::FromHtml(
          htmls.back(), "t" + std::to_string(t) + "-d" + std::to_string(d)));
    }
    auto future = server.SubmitBatch(t, std::move(request));
    ASSERT_TRUE(future.ok()) << future.status().ToString();
    batches.push_back({t, std::move(htmls), std::move(*future)});
  }

  // Supervised sessions on two of the tenants (operator oracle = that
  // tenant's reference truth document).
  struct PendingSupervised {
    int tenant;
    rel::Database truth;
    std::string html;
    std::unique_ptr<validation::SimulatedOperator> op;
    std::future<Result<validation::SessionResult>> future;
  };
  // Heap-allocated so the operator's pointer into `truth` stays stable.
  std::vector<std::unique_ptr<PendingSupervised>> supervised;
  for (int t : {0, 2}) {
    auto pending = std::make_unique<PendingSupervised>();
    pending->tenant = t;
    Rng rng(2000 + t);
    ocr::CashBudgetOptions doc_options;
    doc_options.num_years = 2;
    pending->truth = CashBudgetFixture::Random(doc_options, &rng).value();
    ocr::NoiseModel noise({0.10, 0.0, 1, 1}, &rng);
    pending->html = CashBudgetFixture::RenderHtml(pending->truth, &noise);
    pending->op =
        std::make_unique<validation::SimulatedOperator>(&pending->truth);
    auto future = server.SubmitSupervised(t, pending->html, pending->op.get());
    ASSERT_TRUE(future.ok()) << future.status().ToString();
    pending->future = std::move(*future);
    supervised.push_back(std::move(pending));
  }

  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.Stop().ok());  // drains everything accepted

  for (size_t i = 0; i < singles.size(); ++i) {
    SCOPED_TRACE("single " + std::to_string(i));
    PendingSingle& pending = singles[i];
    ExpectOutcomeEquals(
        pending.future.get(),
        serial[pending.tenant]->Submit(ProcessRequest::FromHtml(pending.html)));
  }
  for (PendingBatch& pending : batches) {
    SCOPED_TRACE("batch tenant " + std::to_string(pending.tenant));
    Result<BatchOutcome> served = pending.future.get();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    ASSERT_EQ(served->documents.size(), pending.htmls.size());
    for (size_t d = 0; d < pending.htmls.size(); ++d) {
      SCOPED_TRACE("doc " + std::to_string(d));
      EXPECT_EQ(served->documents[d].id,
                "t" + std::to_string(pending.tenant) + "-d" +
                    std::to_string(d));
      ExpectOutcomeEquals(served->documents[d].result,
                          serial[pending.tenant]->Submit(
                              ProcessRequest::FromHtml(pending.htmls[d])));
    }
  }
  for (std::unique_ptr<PendingSupervised>& pending : supervised) {
    SCOPED_TRACE("supervised tenant " + std::to_string(pending->tenant));
    Result<validation::SessionResult> served = pending->future.get();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_TRUE(served->converged);
    EXPECT_EQ(*served->repaired.CountDifferences(pending->truth), 0u);
    // Ground truth: the same session run directly on the serial pipeline.
    validation::SimulatedOperator op(&pending->truth);
    auto direct = serial[pending->tenant]->ProcessSupervised(pending->html, op);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    EXPECT_EQ(served->iterations, direct->iterations);
    EXPECT_EQ(served->accepted_updates, direct->accepted_updates);
    EXPECT_EQ(*served->repaired.CountDifferences(direct->repaired), 0u);
  }

  const ServerStats stats = server.stats();
  const int64_t expected_items = static_cast<int64_t>(
      singles.size() + batches.size() + supervised.size());
  EXPECT_EQ(stats.accepted, expected_items);
  EXPECT_EQ(stats.completed, expected_items);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// --- Bounded admission ------------------------------------------------------

// Flooding a capacity-4 queue: the first four documents are admitted, every
// further submission fails fast with kUnavailable carrying the retry hint —
// and all accepted work still completes once the server runs.
TEST(RepairServerTest, SaturatedQueueRejectsWithRetryHint) {
  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 4;
  options.retry_after = std::chrono::milliseconds(120);
  RepairServer server(options);
  auto metadata = MakeMetadata(7, nullptr);
  ASSERT_TRUE(metadata.ok());
  auto tenant = server.AddTenant("flood", *metadata);
  ASSERT_TRUE(tenant.ok());

  const std::string html = MakeHtml(3, 1);
  std::vector<std::future<Result<ProcessOutcome>>> accepted;
  int rejected = 0;
  for (int i = 0; i < 10; ++i) {
    auto future = server.Submit(*tenant, ProcessRequest::FromHtml(html));
    if (future.ok()) {
      accepted.push_back(std::move(*future));
      continue;
    }
    ++rejected;
    EXPECT_EQ(future.status().code(), StatusCode::kUnavailable)
        << future.status().ToString();
    EXPECT_EQ(RetryAfterMillis(future.status()), 120);
  }
  EXPECT_EQ(accepted.size(), 4u);
  EXPECT_EQ(rejected, 6);

  const ServerStats before = server.stats();
  EXPECT_EQ(before.submitted, 10);
  EXPECT_EQ(before.accepted, 4);
  EXPECT_EQ(before.rejected, 6);
  EXPECT_EQ(before.queue_depth, 4u);

  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.Stop().ok());
  for (auto& future : accepted) {
    Result<ProcessOutcome> outcome = future.get();
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
  EXPECT_EQ(server.stats().completed, 4);
}

// A batch wider than the whole queue can never be admitted — that is a
// permanent InvalidArgument, not a retryable kUnavailable. An empty batch is
// InvalidArgument too.
TEST(RepairServerTest, OversizedAndEmptyBatchesAreInvalid) {
  ServerOptions options;
  options.queue_capacity = 2;
  RepairServer server(options);
  auto metadata = MakeMetadata(7, nullptr);
  ASSERT_TRUE(metadata.ok());
  auto tenant = server.AddTenant("t", *metadata);
  ASSERT_TRUE(tenant.ok());

  BatchRequest wide;
  for (int i = 0; i < 3; ++i) {
    wide.documents.push_back(ProcessRequest::FromHtml(MakeHtml(4, 0)));
  }
  auto rejected = server.SubmitBatch(*tenant, std::move(wide));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(RetryAfterMillis(rejected.status()), -1);

  auto empty = server.SubmitBatch(*tenant, BatchRequest{});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

// RetryAfterMillis only reads kUnavailable statuses that carry the hint.
TEST(RepairServerTest, RetryAfterMillisParsesOnlyHintedUnavailable) {
  EXPECT_EQ(RetryAfterMillis(Status::Ok()), -1);
  EXPECT_EQ(RetryAfterMillis(Status::Unavailable("busy")), -1);
  EXPECT_EQ(RetryAfterMillis(Status::InvalidArgument("retry-after-ms=9")), -1);
  EXPECT_EQ(RetryAfterMillis(Status::Unavailable("queue full; retry-after-ms=75")),
            75);
}

// --- Fairness ---------------------------------------------------------------

// With one worker and a pre-Start backlog — tenant 0 queues six documents,
// tenants 1..3 one each — round-robin dispatch must serve every tenant once
// within the first four requests; tenant 0's backlog cannot starve the rest.
// Dispatch order is read back from the serve.request.<tenant> root spans.
TEST(RepairServerTest, RoundRobinServesEveryTenantBeforeRepeats) {
  ServerOptions options;
  options.num_workers = 1;
  RepairServer server(options);
  std::vector<TenantId> tenants;
  for (int t = 0; t < 4; ++t) {
    auto metadata = MakeMetadata(50 + t, nullptr);
    ASSERT_TRUE(metadata.ok());
    TenantOptions tenant_options;
    tenant_options.pipeline = SerialOptions();
    auto id = server.AddTenant("t" + std::to_string(t), *metadata,
                               tenant_options);
    ASSERT_TRUE(id.ok());
    tenants.push_back(*id);
  }

  std::vector<std::future<Result<ProcessOutcome>>> futures;
  auto submit = [&](int tenant) {
    auto future = server.Submit(
        tenants[tenant], ProcessRequest::FromHtml(MakeHtml(60 + tenant, 0)));
    ASSERT_TRUE(future.ok()) << future.status().ToString();
    futures.push_back(std::move(*future));
  };
  for (int i = 0; i < 6; ++i) submit(0);
  for (int t = 1; t < 4; ++t) submit(t);

  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.Stop().ok());
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }

  // Request root spans in execution order (ids are begin-ordered and the
  // single worker runs requests one at a time).
  std::vector<std::string> order;
  for (const obs::SpanRecord& span : server.run().trace().Snapshot()) {
    if (span.name.rfind("serve.request.", 0) == 0) {
      order.push_back(span.name.substr(sizeof("serve.request.") - 1));
    }
  }
  ASSERT_EQ(order.size(), 9u);
  const std::vector<std::string> expected = {"t0", "t1", "t2", "t3", "t0",
                                             "t0", "t0", "t0", "t0"};
  EXPECT_EQ(order, expected);
}

// --- Lifecycle --------------------------------------------------------------

TEST(RepairServerTest, UnknownTenantIsNotFound) {
  RepairServer server;
  auto future = server.Submit(3, ProcessRequest::FromHtml("<html></html>"));
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.status().code(), StatusCode::kNotFound);
}

TEST(RepairServerTest, SupervisedRequiresOperator) {
  RepairServer server;
  auto metadata = MakeMetadata(7, nullptr);
  ASSERT_TRUE(metadata.ok());
  auto tenant = server.AddTenant("t", *metadata);
  ASSERT_TRUE(tenant.ok());
  auto future = server.SubmitSupervised(*tenant, "<html></html>", nullptr);
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.status().code(), StatusCode::kInvalidArgument);
}

// Stop() on a never-started server cancels queued work (the futures become
// ready with kUnavailable) instead of leaving them hanging; submissions and
// tenant registrations after Stop() are refused.
TEST(RepairServerTest, StopWithoutStartCancelsQueuedWork) {
  RepairServer server;
  auto metadata = MakeMetadata(7, nullptr);
  ASSERT_TRUE(metadata.ok());
  auto tenant = server.AddTenant("t", *metadata);
  ASSERT_TRUE(tenant.ok());
  auto future = server.Submit(*tenant, ProcessRequest::FromHtml(MakeHtml(3, 0)));
  ASSERT_TRUE(future.ok());

  ASSERT_TRUE(server.Stop().ok());
  Result<ProcessOutcome> outcome = future->get();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);

  auto late = server.Submit(*tenant, ProcessRequest::FromHtml("<html></html>"));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
  auto late_tenant = server.AddTenant("late", *metadata);
  ASSERT_FALSE(late_tenant.ok());
  EXPECT_EQ(late_tenant.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(server.Stop().ok());  // idempotent
}

TEST(RepairServerTest, DoubleStartFails) {
  RepairServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.Start().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(server.Stop().ok());
}

// Submissions racing Start()/execution from several client threads: no
// hangs, no crashes, every accepted future completes, and accounting adds
// up. (The interesting schedules show up under -DDART_SANITIZE=thread.)
TEST(RepairServerTest, ConcurrentClientsDrainCleanly) {
  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 8;
  RepairServer server(options);
  std::vector<TenantId> tenants;
  for (int t = 0; t < 2; ++t) {
    auto metadata = MakeMetadata(80 + t, nullptr);
    ASSERT_TRUE(metadata.ok());
    auto id = server.AddTenant("c" + std::to_string(t), *metadata);
    ASSERT_TRUE(id.ok());
    tenants.push_back(*id);
  }
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const std::string html = MakeHtml(90 + c, 1);
      for (int i = 0; i < 4; ++i) {
        auto future =
            server.Submit(tenants[c % 2], ProcessRequest::FromHtml(html));
        if (!future.ok()) {
          EXPECT_EQ(future.status().code(), StatusCode::kUnavailable);
          ++rejected;
          continue;
        }
        Result<ProcessOutcome> outcome = future->get();
        EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
        ++accepted;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  ASSERT_TRUE(server.Stop().ok());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, accepted.load());
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.completed, accepted.load());
  EXPECT_EQ(accepted.load() + rejected.load(), 16);
}

// --- Sinks ------------------------------------------------------------------

// A server with in-process sinks streams serve.* deltas to all of them:
// the ring's deltas telescope to the final counter state, the Prometheus
// sink scrapes serve_* exposition text, and the callback sink sees exactly
// one final tick (the Stop() flush) as its last record.
TEST(RepairServerTest, SinksObserveTheMetricStream) {
  obs::InMemoryRingSink ring(64);
  obs::PrometheusTextSink prometheus;
  std::vector<obs::ExportTick> callback_seqs;
  int64_t callback_completed = 0;
  obs::CallbackSink callback([&](const obs::ExportTick& tick) {
    obs::ExportTick copy;
    copy.seq = tick.seq;
    copy.final_record = tick.final_record;
    callback_seqs.push_back(std::move(copy));
    callback_completed += tick.delta.Counter("serve.completed");
  });

  ServerOptions options;
  options.num_workers = 2;
  options.sinks = {&ring, &prometheus, &callback};
  options.export_interval = std::chrono::milliseconds(5);
  RepairServer server(options);
  auto metadata = MakeMetadata(7, nullptr);
  ASSERT_TRUE(metadata.ok());
  auto tenant = server.AddTenant("sinky", *metadata);
  ASSERT_TRUE(tenant.ok());

  ASSERT_TRUE(server.Start().ok());
  std::vector<std::future<Result<ProcessOutcome>>> futures;
  for (int i = 0; i < 3; ++i) {
    auto future =
        server.Submit(*tenant, ProcessRequest::FromHtml(MakeHtml(5 + i, 1)));
    ASSERT_TRUE(future.ok());
    futures.push_back(std::move(*future));
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  ASSERT_TRUE(server.Stop().ok());

  // Ring: ticks in seq order, last one final, counter deltas telescope.
  const std::vector<obs::InMemoryRingSink::Record> records = ring.Records();
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(ring.dropped(), 0);
  EXPECT_TRUE(records.back().final_record);
  int64_t completed = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, static_cast<int64_t>(i));
    EXPECT_EQ(records[i].final_record, i + 1 == records.size());
    completed += records[i].delta.Counter("serve.completed");
  }
  EXPECT_EQ(completed, 3);

  // Prometheus: final exposition text covers the serve.* families.
  const std::string scrape = prometheus.Scrape();
  EXPECT_NE(scrape.find("serve_completed 3"), std::string::npos) << scrape;
  EXPECT_NE(scrape.find("# TYPE serve_queue_depth gauge"), std::string::npos);
  EXPECT_NE(scrape.find("serve_request_seconds_count 3"), std::string::npos);

  // Callback: same tick stream, exactly one final record, at the end.
  ASSERT_EQ(callback_seqs.size(), records.size());
  for (size_t i = 0; i < callback_seqs.size(); ++i) {
    EXPECT_EQ(callback_seqs[i].seq, static_cast<int64_t>(i));
    EXPECT_EQ(callback_seqs[i].final_record, i + 1 == callback_seqs.size());
  }
  EXPECT_EQ(callback_completed, 3);
}

// --- Per-tenant labeled metrics ---------------------------------------------

// Every request-path counter is emitted twice — once globally, once labeled
// {tenant="<name>"} — so the labeled series must partition the global ones
// exactly, and the per-tenant queue-depth gauges must read zero after drain.
TEST(RepairServerTest, LabeledTenantSeriesPartitionGlobalCounters) {
  ServerOptions options;
  options.num_workers = 2;
  RepairServer server(options);
  const std::vector<std::string> names = {"alpha", "bravo"};
  std::vector<TenantId> tenants;
  for (size_t t = 0; t < names.size(); ++t) {
    auto metadata = MakeMetadata(120 + t, nullptr);
    ASSERT_TRUE(metadata.ok());
    auto id = server.AddTenant(names[t], *metadata);
    ASSERT_TRUE(id.ok());
    tenants.push_back(*id);
  }

  // Skewed submission counts: alpha 3 documents, bravo 1.
  std::vector<std::future<Result<ProcessOutcome>>> futures;
  const int kPerTenant[] = {3, 1};
  for (size_t t = 0; t < names.size(); ++t) {
    for (int i = 0; i < kPerTenant[t]; ++i) {
      auto future = server.Submit(
          tenants[t], ProcessRequest::FromHtml(MakeHtml(130 + 10 * t + i, 1)));
      ASSERT_TRUE(future.ok());
      futures.push_back(std::move(*future));
    }
  }
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.Stop().ok());
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }

  const obs::MetricsSnapshot snapshot = server.run().metrics().Snapshot();
  for (const char* metric :
       {"serve.submitted", "serve.accepted", "serve.completed"}) {
    SCOPED_TRACE(metric);
    int64_t labeled_sum = 0;
    for (size_t t = 0; t < names.size(); ++t) {
      const int64_t labeled =
          snapshot.Counter(metric, {{"tenant", names[t]}});
      EXPECT_EQ(labeled, kPerTenant[t]) << names[t];
      labeled_sum += labeled;
    }
    EXPECT_EQ(snapshot.Counter(metric), labeled_sum);
  }
  EXPECT_EQ(snapshot.Counter("serve.rejected"), 0);

  // Latency histograms partition the same way.
  int64_t labeled_observations = 0;
  for (size_t t = 0; t < names.size(); ++t) {
    const auto it = snapshot.histograms.find(
        obs::LabeledName("serve.request_seconds", {{"tenant", names[t]}}));
    ASSERT_NE(it, snapshot.histograms.end()) << names[t];
    EXPECT_EQ(it->second.count, kPerTenant[t]) << names[t];
    labeled_observations += it->second.count;
  }
  const auto global = snapshot.histograms.find("serve.request_seconds");
  ASSERT_NE(global, snapshot.histograms.end());
  EXPECT_EQ(global->second.count, labeled_observations);

  // Drained server: all queue-depth gauges (global and labeled) read zero.
  EXPECT_EQ(snapshot.GaugeOr("serve.queue_depth", -1.0), 0.0);
  for (const std::string& name : names) {
    EXPECT_EQ(snapshot.GaugeOr("serve.queue_depth", {{"tenant", name}}, -1.0),
              0.0)
        << name;
  }
}

// --- Admin status & SLOs ----------------------------------------------------

// The live status surface under deliberately skewed load: four tenants, two
// fed cheap clean documents and two fed larger error-laden ones, with an
// SLO pair chosen so one tenant must meet its objectives and another must
// breach them regardless of host speed (300 s vs 1 µs latency objectives).
// AdminStatus() must report the skew (distinct per-tenant p99s) and the
// breached-vs-met pair, without any exporter attached.
TEST(RepairServerTest, AdminStatusReportsTenantSkewAndSloPair) {
  constexpr int kTenants = 4;
  constexpr int kPerTenant = 4;
  ServerOptions options;
  options.num_workers = 2;
  RepairServer server(options);
  for (int t = 0; t < kTenants; ++t) {
    auto metadata = MakeMetadata(140 + t, nullptr);
    ASSERT_TRUE(metadata.ok());
    TenantOptions tenant_options;
    tenant_options.pipeline = SerialOptions();
    if (t == 0) {
      obs::SloSpec met;
      met.latency_objective_seconds = 300.0;  // nothing takes 5 minutes
      met.availability_objective = 0.5;
      tenant_options.slo = met;
    } else if (t == 3) {
      obs::SloSpec breached;
      breached.latency_objective_seconds = 1e-6;  // nothing beats 1 µs
      breached.availability_objective = 0.5;
      tenant_options.slo = breached;
    }
    auto id = server.AddTenant("t" + std::to_string(t), *metadata,
                               tenant_options);
    ASSERT_TRUE(id.ok());
  }

  // Tenants 0-1 submit clean 2-year documents, tenants 2-3 ten-year
  // documents with injected errors — bigger acquisitions plus a MILP solve
  // the clean path never runs, so their latencies land in visibly higher
  // histogram buckets.
  std::vector<std::future<Result<ProcessOutcome>>> futures;
  for (int t = 0; t < kTenants; ++t) {
    const bool heavy = t >= 2;
    for (int i = 0; i < kPerTenant; ++i) {
      const uint64_t seed = 200 + static_cast<uint64_t>(10 * t + i);
      auto future = server.Submit(
          t, ProcessRequest::FromHtml(
                 MakeHtml(seed, heavy ? 2 : 0, heavy ? 10 : 2)));
      ASSERT_TRUE(future.ok());
      futures.push_back(std::move(*future));
    }
  }
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.Stop().ok());
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }

  // The skew is visible in the per-tenant latency histograms.
  const obs::MetricsSnapshot snapshot = server.run().metrics().Snapshot();
  auto p99 = [&](const std::string& tenant) {
    const auto it = snapshot.histograms.find(
        obs::LabeledName("serve.request_seconds", {{"tenant", tenant}}));
    EXPECT_NE(it, snapshot.histograms.end()) << tenant;
    EXPECT_EQ(it->second.count, kPerTenant) << tenant;
    return it->second.Quantile(0.99);
  };
  EXPECT_GT(p99("t3"), p99("t0"));

  const std::string status = server.AdminStatus();
  EXPECT_NE(status.find("\"schema\": \"dart.serve.status\""),
            std::string::npos)
      << status;
  EXPECT_NE(status.find("\"schema_version\": 1"), std::string::npos);
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_NE(status.find("\"tenant\": \"t" + std::to_string(t) + "\""),
              std::string::npos);
  }
  // The breached-vs-met pair: t3's 1 µs objective cannot be met, t0's 300 s
  // objective cannot be missed.
  EXPECT_NE(status.find("\"compliant\": false"), std::string::npos) << status;
  EXPECT_NE(status.find("\"compliant\": true"), std::string::npos) << status;
  EXPECT_NE(status.find("\"budget_remaining\""), std::string::npos);
  EXPECT_NE(status.find("\"window_ticks_used\""), std::string::npos);
}

}  // namespace
}  // namespace dart::serve
