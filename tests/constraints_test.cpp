// Tests for the constraint language: attribute expressions, aggregation
// function evaluation (P2: the χ values of Example 2), the DSL parser, the
// grounding engine, and the consistency checker on the running example
// (violations i and ii of Example 1).

#include <gtest/gtest.h>

#include "constraints/ast.h"
#include "constraints/eval.h"
#include "constraints/parser.h"
#include "ocr/cash_budget.h"

namespace dart::cons {
namespace {

using ocr::CashBudgetFixture;

class RunningExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = CashBudgetFixture::PaperExample(/*with_acquisition_error=*/true);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Status status = ParseConstraintProgram(
        db_.Schema(), CashBudgetFixture::ConstraintProgram(), &constraints_);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  const AggregationFunction& chi(const std::string& name) {
    const AggregationFunction* fn = constraints_.FindFunction(name);
    DART_CHECK(fn != nullptr);
    return *fn;
  }

  rel::Database db_;
  ConstraintSet constraints_;
};

TEST_F(RunningExampleTest, ParserRegistersEverything) {
  EXPECT_EQ(constraints_.functions().size(), 2u);
  EXPECT_EQ(constraints_.constraints().size(), 3u);
  EXPECT_NE(constraints_.FindFunction("chi1"), nullptr);
  EXPECT_NE(constraints_.FindFunction("chi2"), nullptr);
  EXPECT_EQ(constraints_.FindFunction("nope"), nullptr);
}

TEST_F(RunningExampleTest, Chi1ValuesOfExample2) {
  // χ₁('Receipts', 2003, 'det') = 100 + 120 = 220.
  auto value = EvaluateAggregation(
      db_, chi("chi1"),
      {rel::Value("Receipts"), rel::Value(2003), rel::Value("det")});
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_DOUBLE_EQ(*value, 220);
  // χ₁('Disbursements', 2003, 'aggr') = 160.
  value = EvaluateAggregation(
      db_, chi("chi1"),
      {rel::Value("Disbursements"), rel::Value(2003), rel::Value("aggr")});
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 160);
}

TEST_F(RunningExampleTest, Chi2ValuesOfExample2) {
  // χ₂(2003, 'cash sales') = 100.
  auto value = EvaluateAggregation(
      db_, chi("chi2"), {rel::Value(2003), rel::Value("cash sales")});
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 100);
  // χ₂(2004, 'net cash inflow') = 10.
  value = EvaluateAggregation(
      db_, chi("chi2"), {rel::Value(2004), rel::Value("net cash inflow")});
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 10);
}

TEST_F(RunningExampleTest, EmptyTupleSetSumsToZero) {
  auto value = EvaluateAggregation(
      db_, chi("chi2"), {rel::Value(2099), rel::Value("cash sales")});
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 0);
}

TEST_F(RunningExampleTest, TupleSetsAreSteadyTargets) {
  auto tuples = AggregationTupleSet(
      db_, chi("chi1"),
      {rel::Value("Receipts"), rel::Value(2003), rel::Value("det")});
  ASSERT_TRUE(tuples.ok());
  ASSERT_EQ(tuples->size(), 2u);  // cash sales, receivables
  EXPECT_EQ((*tuples)[0], 1u);
  EXPECT_EQ((*tuples)[1], 2u);
}

TEST_F(RunningExampleTest, ViolationsOfExample1Detected) {
  // The 250-error breaks (i) constraint 1 on Receipts/2003 and (ii)
  // constraint 2 on 2003 — and nothing else.
  ConsistencyChecker checker(&constraints_);
  auto violations = checker.Check(db_);
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();
  ASSERT_EQ(violations->size(), 2u);
  EXPECT_EQ((*violations)[0].constraint, "c1");
  EXPECT_EQ((*violations)[1].constraint, "c2");
  EXPECT_FALSE(*checker.IsConsistent(db_));
}

TEST_F(RunningExampleTest, CleanDatabaseIsConsistent) {
  auto clean = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(clean.ok());
  ConsistencyChecker checker(&constraints_);
  EXPECT_TRUE(*checker.IsConsistent(*clean));
}

TEST_F(RunningExampleTest, GroundingProjectsAndDedupes) {
  // Constraint 1 projects onto (x, y): 3 sections × 2 years = 6 bindings,
  // even though 20 tuples satisfy the premise.
  const AggregateConstraint& c1 = constraints_.constraints()[0];
  auto bindings =
      GroundSubstitutions(db_, c1.premise, TermVariables(c1));
  ASSERT_TRUE(bindings.ok());
  EXPECT_EQ(bindings->size(), 6u);
  // Constraint 2 projects onto (x): 2 years.
  const AggregateConstraint& c2 = constraints_.constraints()[1];
  bindings = GroundSubstitutions(db_, c2.premise, TermVariables(c2));
  ASSERT_TRUE(bindings.ok());
  EXPECT_EQ(bindings->size(), 2u);
}

// --- Attribute expressions -------------------------------------------------

TEST(AttributeExprTest, LinearizeCombinations) {
  auto schema = rel::RelationSchema::Create(
      "R", {{"A", rel::Domain::kInt, true}, {"B", rel::Domain::kReal, true}});
  ASSERT_TRUE(schema.ok());
  // 2*(A - B) + 3  → 2A - 2B + 3
  AttributeExprPtr expr = MakeBinaryExpr(
      MakeScaleExpr(2.0, MakeBinaryExpr(MakeAttrExpr("A"), '-',
                                        MakeAttrExpr("B"))),
      '+', MakeConstExpr(3.0));
  LinearForm form;
  ASSERT_TRUE(expr->Linearize(*schema, &form, 1.0).ok());
  EXPECT_DOUBLE_EQ(form.constant, 3.0);
  EXPECT_DOUBLE_EQ(form.coefficients.at(0), 2.0);
  EXPECT_DOUBLE_EQ(form.coefficients.at(1), -2.0);
}

TEST(AttributeExprTest, UnknownAttributeRejected) {
  auto schema = rel::RelationSchema::Create(
      "R", {{"A", rel::Domain::kInt, true}});
  ASSERT_TRUE(schema.ok());
  LinearForm form;
  EXPECT_FALSE(MakeAttrExpr("Z")->Linearize(*schema, &form, 1.0).ok());
}

TEST(AttributeExprTest, NonNumericAttributeRejected) {
  auto schema = rel::RelationSchema::Create(
      "R", {{"S", rel::Domain::kString, false}});
  ASSERT_TRUE(schema.ok());
  LinearForm form;
  EXPECT_FALSE(MakeAttrExpr("S")->Linearize(*schema, &form, 1.0).ok());
}

// --- Parser error handling -------------------------------------------------

class ParserErrorTest : public ::testing::Test {
 protected:
  rel::DatabaseSchema Schema() {
    rel::DatabaseSchema schema;
    auto r = rel::RelationSchema::Create(
        "R", {{"A", rel::Domain::kString, false},
              {"V", rel::Domain::kInt, true}});
    DART_CHECK(r.ok());
    DART_CHECK(schema.AddRelation(*r).ok());
    return schema;
  }

  Status Parse(const std::string& text) {
    ConstraintSet out;
    return ParseConstraintProgram(Schema(), text, &out);
  }
};

TEST_F(ParserErrorTest, AcceptsMinimalProgram) {
  EXPECT_TRUE(Parse("agg s(x) := sum(V) from R where A = x;\n"
                    "constraint k: R(a, _) => s(a) <= 10;")
                  .ok());
}

TEST_F(ParserErrorTest, ComparisonOperatorsParsed) {
  EXPECT_TRUE(Parse("agg s(x) := sum(V) from R where A != x;\n"
                    "constraint k: R(a, _) => s(a) >= -3;")
                  .ok());
}

TEST_F(ParserErrorTest, RejectsUnknownRelation) {
  Status status = Parse("agg s(x) := sum(V) from Nope where A = x;");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(ParserErrorTest, RejectsUnknownAttributeInSum) {
  EXPECT_FALSE(Parse("agg s(x) := sum(W) from R where A = x;").ok());
}

TEST_F(ParserErrorTest, RejectsUndeclaredFunction) {
  Status status = Parse("constraint k: R(a, _) => ghost(a) <= 1;");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(ParserErrorTest, RejectsArityMismatch) {
  EXPECT_FALSE(Parse("agg s(x) := sum(V) from R where A = x;\n"
                     "constraint k: R(a, _) => s(a, a) <= 1;")
                   .ok());
}

TEST_F(ParserErrorTest, RejectsFreeVariableInCall) {
  // Def. 1 requires call variables to occur in the premise.
  EXPECT_FALSE(Parse("agg s(x) := sum(V) from R where A = x;\n"
                     "constraint k: R(a, _) => s(zz) <= 1;")
                   .ok());
}

TEST_F(ParserErrorTest, RejectsStrictComparisonInBody) {
  EXPECT_FALSE(Parse("agg s(x) := sum(V) from R where A = x;\n"
                     "constraint k: R(a, _) => s(a) < 1;")
                   .ok());
}

TEST_F(ParserErrorTest, RejectsUnterminatedString) {
  EXPECT_EQ(Parse("agg s(x) := sum(V) from R where A = 'oops;").code(),
            StatusCode::kParseError);
}

TEST_F(ParserErrorTest, RejectsWildcardInCall) {
  EXPECT_FALSE(Parse("agg s(x) := sum(V) from R where A = x;\n"
                     "constraint k: R(a, _) => s(_) <= 1;")
                   .ok());
}

TEST_F(ParserErrorTest, ConstantSummandsFoldIntoRhs) {
  ConstraintSet out;
  Status status = ParseConstraintProgram(
      Schema(),
      "agg s(x) := sum(V) from R where A = x;\n"
      "constraint k: R(a, _) => s(a) + 5 <= 12;",
      &out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(out.constraints().size(), 1u);
  EXPECT_DOUBLE_EQ(out.constraints()[0].rhs, 7.0);  // 12 - 5
}

TEST_F(ParserErrorTest, CoefficientsAndSignsParsed) {
  ConstraintSet out;
  Status status = ParseConstraintProgram(
      Schema(),
      "agg s(x) := sum(V) from R where A = x;\n"
      "constraint k: R(a, _) => -2*s(a) + 3*s(a) <= 4;",
      &out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const auto& terms = out.constraints()[0].terms;
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_DOUBLE_EQ(terms[0].coefficient, -2.0);
  EXPECT_DOUBLE_EQ(terms[1].coefficient, 3.0);
}

TEST_F(ParserErrorTest, CommentsAndWhitespaceIgnored) {
  EXPECT_TRUE(Parse("# header comment\n"
                    "agg s(x) := sum(V) from R where A = x;  # trailing\n"
                    "\n"
                    "constraint k: R(a, _) => s(a) <= 10;\n")
                  .ok());
}

}  // namespace
}  // namespace dart::cons
