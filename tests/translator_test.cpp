// Tests for the Sec. 5 translation (P4 of DESIGN.md): the running example
// must produce exactly the ground equalities of Example 10 / Fig. 4, the
// variable layout of the paper (N = 20 with one z/y/δ triple per tuple), and
// the MILP optimum 1 with y₄ = −30.

#include <gtest/gtest.h>

#include <algorithm>

#include "constraints/parser.h"
#include "milp/branch_and_bound.h"
#include "ocr/cash_budget.h"
#include "repair/translator.h"

namespace dart::repair {
namespace {

using ocr::CashBudgetFixture;

cons::ConstraintSet RunningExampleConstraints(const rel::Database& db) {
  cons::ConstraintSet constraints;
  Status status = cons::ParseConstraintProgram(
      db.Schema(), CashBudgetFixture::ConstraintProgram(), &constraints);
  DART_CHECK_MSG(status.ok(), status.ToString());
  return constraints;
}

class PaperTranslationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = CashBudgetFixture::PaperExample(/*with_acquisition_error=*/true);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    constraints_ = RunningExampleConstraints(db_);
  }

  rel::Database db_;
  cons::ConstraintSet constraints_;
};

TEST_F(PaperTranslationTest, VariableLayoutMatchesExample10) {
  auto translation = TranslateToMilp(db_, constraints_);
  ASSERT_TRUE(translation.ok()) << translation.status().ToString();
  // "The values involved in constraints ... are as many as the number of
  // tuples, that is N = 20."
  EXPECT_EQ(translation->cells.size(), 20u);
  // z_i is associated to the i-th tuple's Value, in tuple order: v₂ = 100
  // (cash sales 2003), v₄ = 250 (the corrupted total).
  EXPECT_DOUBLE_EQ(translation->current_values[1], 100);
  EXPECT_DOUBLE_EQ(translation->current_values[3], 250);
  EXPECT_DOUBLE_EQ(translation->current_values[19], 90);
  // 3 variables per cell: z, y, δ.
  EXPECT_EQ(translation->model.num_variables(), 60);
}

TEST_F(PaperTranslationTest, GroundRowsMatchFigure4) {
  auto translation = TranslateToMilp(db_, constraints_);
  ASSERT_TRUE(translation.ok());
  // Constraint 1 grounds to 4 non-trivial equalities (Receipts and
  // Disbursements, both years; Balance sections have neither det nor aggr
  // items so their instances are the trivial 0 = 0 and are dropped),
  // constraints 2 and 3 to 2 each: 8 rows total, exactly Fig. 4.
  ASSERT_EQ(translation->ground_rows.size(), 8u);

  auto contains = [&](const std::string& needle) {
    return std::any_of(translation->ground_rows.begin(),
                       translation->ground_rows.end(),
                       [&](const std::string& row) {
                         return row.find(needle) != std::string::npos;
                       });
  };
  // z2 + z3 - z4 = 0  (cash sales + receivables = total cash receipts 2003)
  EXPECT_TRUE(contains("z2 + z3 + -1*z4 = 0") || contains("z2 + z3 -1*z4"))
      << "rows:\n" + [&] {
           std::string all;
           for (const auto& row : translation->ground_rows) all += row + "\n";
           return all;
         }();
}

TEST_F(PaperTranslationTest, OccurrenceCountsDriveOrderingHeuristic) {
  auto translation = TranslateToMilp(db_, constraints_);
  ASSERT_TRUE(translation.ok());
  // z₄ (total cash receipts 2003) occurs in constraint 1 (receipts/2003) and
  // constraint 2 (2003): 2 ground rows. z₂ (cash sales) occurs only in the
  // receipts sum: 1 row. z₉ (net cash inflow 2003) occurs in constraints 2
  // and 3: 2 rows.
  EXPECT_EQ(translation->occurrence_counts[3], 2);
  EXPECT_EQ(translation->occurrence_counts[1], 1);
  EXPECT_EQ(translation->occurrence_counts[8], 2);
}

TEST_F(PaperTranslationTest, MilpOptimumIsOneChange) {
  auto translation = TranslateToMilp(db_, constraints_);
  ASSERT_TRUE(translation.ok());
  milp::MilpOptions options;
  options.objective_is_integral = true;
  milp::MilpResult solved = milp::SolveMilp(translation->model, options);
  ASSERT_EQ(solved.status, milp::MilpResult::SolveStatus::kOptimal);
  // "The minimum value of the objective function of this optimization
  // problem is 1 (only δ₄ = 1) ... y₄ takes value −30."
  EXPECT_NEAR(solved.objective, 1.0, 1e-6);
  EXPECT_NEAR(solved.point[translation->y_vars[3]], -30.0, 1e-6);
  EXPECT_NEAR(solved.point[translation->z_vars[3]], 220.0, 1e-6);
  for (size_t i = 0; i < translation->cells.size(); ++i) {
    if (i == 3) continue;
    EXPECT_NEAR(solved.point[translation->y_vars[i]], 0.0, 1e-6)
        << "y" << (i + 1) << " unexpectedly nonzero";
  }
}

TEST_F(PaperTranslationTest, TheoreticalBigMIsAstronomical) {
  auto translation = TranslateToMilp(db_, constraints_);
  ASSERT_TRUE(translation.ok());
  // The paper's M for the running example is 20·(28·250)^57 — far beyond any
  // double. We report log10; sanity-check the order of magnitude (> 100
  // decimal digits) and that the practical M is modest.
  EXPECT_GT(translation->theoretical_m_log10, 100);
  EXPECT_LT(translation->practical_m, 1e5);
}

TEST_F(PaperTranslationTest, RestrictToInvolvedKeepsAllTwentyCells) {
  // In the running example every tuple participates in some constraint, so
  // restriction changes nothing.
  TranslatorOptions options;
  options.restrict_to_involved = true;
  auto translation = TranslateToMilp(db_, constraints_, options);
  ASSERT_TRUE(translation.ok());
  EXPECT_EQ(translation->cells.size(), 20u);
}

TEST_F(PaperTranslationTest, ConsistentDatabaseTranslatesToZeroOptimum) {
  auto clean = CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(clean.ok());
  auto translation = TranslateToMilp(*clean, constraints_);
  ASSERT_TRUE(translation.ok());
  milp::MilpResult solved = milp::SolveMilp(translation->model);
  ASSERT_EQ(solved.status, milp::MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(solved.objective, 0.0, 1e-6);
}

TEST_F(PaperTranslationTest, FixedValuePinIsHonored) {
  // Pin z₄ to the (wrong) acquired value 250: the cheapest completion now
  // changes 2 other cells instead (e.g. a detail receipt and the net/ending
  // chain — cardinality must exceed 1).
  const rel::CellRef total_receipts_2003{"CashBudget", 3, 4};
  std::vector<FixedValue> pins = {{total_receipts_2003, 250.0}};
  auto translation = TranslateToMilp(db_, constraints_, {}, pins);
  ASSERT_TRUE(translation.ok());
  milp::MilpOptions options;
  options.objective_is_integral = true;
  milp::MilpResult solved = milp::SolveMilp(translation->model, options);
  ASSERT_EQ(solved.status, milp::MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(solved.point[translation->z_vars[3]], 250.0, 1e-6);
  EXPECT_GE(solved.objective, 2.0 - 1e-6);
}

TEST(TranslatorErrorsTest, NonSteadyConstraintRejected) {
  // A schema where the aggregation WHERE clause touches the measure
  // attribute itself: R(A:Int*, B:String); sum over A where A = x.
  auto schema_result = rel::RelationSchema::Create(
      "R", {{"A", rel::Domain::kInt, true}, {"B", rel::Domain::kString, false}});
  ASSERT_TRUE(schema_result.ok());
  rel::Database db;
  ASSERT_TRUE(db.AddRelation(*schema_result).ok());
  cons::ConstraintSet constraints;
  Status status = cons::ParseConstraintProgram(db.Schema(), R"(
agg bad(x) := sum(A) from R where A = x;
constraint k: R(a, _) => bad(a) <= 10;
)", &constraints);
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto translation = TranslateToMilp(db, constraints);
  ASSERT_FALSE(translation.ok());
  EXPECT_EQ(translation.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(translation.status().message().find("not steady"),
            std::string::npos);
}

TEST(TranslatorErrorsTest, ViolatedConstantRowIsInfeasible) {
  // A ground constraint with no measure cells that is false can never be
  // repaired by measure updates.
  auto schema_result = rel::RelationSchema::Create(
      "R", {{"A", rel::Domain::kInt, false}, {"V", rel::Domain::kInt, true}});
  ASSERT_TRUE(schema_result.ok());
  rel::Database db;
  ASSERT_TRUE(db.AddRelation(*schema_result).ok());
  rel::Relation* r = db.FindRelation("R");
  ASSERT_TRUE(r->Insert({rel::Value(7), rel::Value(1)}).ok());
  cons::ConstraintSet constraints;
  // sum(A) where A = 7 is 7, but the constraint demands <= 3; A is not a
  // measure attribute so nothing can change it.
  Status status = cons::ParseConstraintProgram(db.Schema(), R"(
agg sa(x) := sum(A) from R where A = x;
constraint k: R(a, _) => sa(a) <= 3;
)", &constraints);
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto translation = TranslateToMilp(db, constraints);
  ASSERT_FALSE(translation.ok());
  EXPECT_EQ(translation.status().code(), StatusCode::kInfeasible);
}

}  // namespace
}  // namespace dart::repair
