// Tests for the wrapper substrate: HTML table parsing, rowspan/colspan grid
// normalization, domain catalogs with hierarchies, t-norms, and row-pattern
// matching — including P6: the Fig. 7 match where "bgnning cesh" binds to
// "beginning cash" with a sub-100% third-cell score, and the multi-row Year
// cell propagating to adjacent rows (Example 13).

#include <gtest/gtest.h>

#include "ocr/cash_budget.h"
#include "wrapper/domains.h"
#include "wrapper/html_parser.h"
#include "wrapper/matcher.h"
#include "wrapper/row_pattern.h"
#include "wrapper/table_grid.h"
#include "wrapper/wrapper.h"

namespace dart::wrap {
namespace {

TEST(HtmlParserTest, SimpleTable) {
  auto tables = ParseHtmlTables(
      "<table><tr><td>a</td><td>b</td></tr><tr><td>c</td><td>d</td></tr>"
      "</table>");
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->size(), 1u);
  ASSERT_EQ((*tables)[0].rows.size(), 2u);
  EXPECT_EQ((*tables)[0].rows[0][0].text, "a");
  EXPECT_EQ((*tables)[0].rows[1][1].text, "d");
}

TEST(HtmlParserTest, SpansAndHeaders) {
  auto tables = ParseHtmlTables(
      "<table><tr><th colspan=\"2\">head</th></tr>"
      "<tr><td rowspan=\"3\">tall</td><td>x</td></tr></table>");
  ASSERT_TRUE(tables.ok());
  const HtmlTable& table = (*tables)[0];
  EXPECT_TRUE(table.rows[0][0].header);
  EXPECT_EQ(table.rows[0][0].colspan, 2);
  EXPECT_EQ(table.rows[1][0].rowspan, 3);
}

TEST(HtmlParserTest, OmittedEndTagsTolerated) {
  auto tables = ParseHtmlTables(
      "<table><tr><td>a<td>b<tr><td>c<td>d</table>");
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ((*tables)[0].rows.size(), 2u);
  EXPECT_EQ((*tables)[0].rows[1][1].text, "d");
}

TEST(HtmlParserTest, EntitiesAndMarkupInsideCells) {
  auto tables = ParseHtmlTables(
      "<table><tr><td><b>R&amp;D</b> &lt;x&gt;&nbsp;&#65;</td></tr></table>");
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ((*tables)[0].rows[0][0].text, "R&D <x> A");
}

TEST(HtmlParserTest, NestedTablesSeparated) {
  auto tables = ParseHtmlTables(
      "<table><tr><td>outer<table><tr><td>inner</td></tr></table></td></tr>"
      "</table>");
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->size(), 2u);
  EXPECT_EQ((*tables)[0].rows[0][0].text, "inner");   // closes first
  EXPECT_EQ((*tables)[1].rows[0][0].text, "outer");
}

TEST(HtmlParserTest, ScriptAndCommentSkipped) {
  auto tables = ParseHtmlTables(
      "<table><!-- decoy <td>ghost</td> --><tr><td>"
      "<script>var x = '<td>evil</td>';</script>real</td></tr></table>");
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->size(), 1u);
  EXPECT_EQ((*tables)[0].rows[0][0].text, "real");
}

TEST(HtmlParserTest, UnclosedTableRecovered) {
  auto tables = ParseHtmlTables("<table><tr><td>x</td>");
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->size(), 1u);
  EXPECT_EQ((*tables)[0].rows[0][0].text, "x");
}

TEST(HtmlParserTest, EscapeRoundTrip) {
  const std::string nasty = "a<b>&\"c'";
  EXPECT_EQ(DecodeEntities(EscapeHtml(nasty)), nasty);
}

TEST(TableGridTest, RowspanFillsDown) {
  HtmlTable table;
  table.rows = {{{"Y", 2, 1, false}, {"a", 1, 1, false}},
                {{"b", 1, 1, false}}};
  auto grid = TableGrid::FromTable(table);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->num_rows(), 2u);
  EXPECT_EQ(grid->num_cols(), 2u);
  EXPECT_EQ(grid->At(0, 0).text, "Y");
  EXPECT_EQ(grid->At(1, 0).text, "Y");   // span-filled
  EXPECT_TRUE(grid->At(0, 0).origin);
  EXPECT_FALSE(grid->At(1, 0).origin);
  EXPECT_EQ(grid->At(1, 1).text, "b");
  EXPECT_TRUE(grid->RowIsAtomic(0));
  EXPECT_FALSE(grid->RowIsAtomic(1));
}

TEST(TableGridTest, ColspanFillsRight) {
  HtmlTable table;
  table.rows = {{{"wide", 1, 3, false}}, {{"a", 1, 1, false},
                                          {"b", 1, 1, false},
                                          {"c", 1, 1, false}}};
  auto grid = TableGrid::FromTable(table);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->num_cols(), 3u);
  EXPECT_EQ(grid->At(0, 2).text, "wide");
  EXPECT_EQ(grid->At(0, 2).origin_col, 0u);
}

TEST(TableGridTest, RaggedRowsPadded) {
  HtmlTable table;
  table.rows = {{{"a", 1, 1, false}},
                {{"b", 1, 1, false}, {"c", 1, 1, false}}};
  auto grid = TableGrid::FromTable(table);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->num_cols(), 2u);
  EXPECT_FALSE(grid->At(0, 1).occupied);
}

TEST(DomainCatalogTest, DefinitionAndLookup) {
  DomainCatalog catalog;
  ASSERT_TRUE(catalog.AddDomain("Section",
                                {"Receipts", "Disbursements", "Balance"})
                  .ok());
  EXPECT_TRUE(catalog.HasDomain("Section"));
  EXPECT_FALSE(catalog.HasDomain("Nope"));
  EXPECT_FALSE(catalog.AddDomain("Section", {"x"}).ok());  // redefinition
  EXPECT_FALSE(catalog.AddDomain("Empty", {}).ok());
  ASSERT_NE(catalog.ItemsOf("Section"), nullptr);
  EXPECT_EQ(catalog.ItemsOf("Section")->size(), 3u);
}

TEST(DomainCatalogTest, HierarchyTransitiveAndAcyclic) {
  DomainCatalog catalog;
  ASSERT_TRUE(catalog.AddDomain("L0", {"root"}).ok());
  ASSERT_TRUE(catalog.AddDomain("L1", {"mid"}).ok());
  ASSERT_TRUE(catalog.AddDomain("L2", {"leaf"}).ok());
  ASSERT_TRUE(catalog.AddSpecialization("mid", "root").ok());
  ASSERT_TRUE(catalog.AddSpecialization("leaf", "mid").ok());
  EXPECT_TRUE(catalog.IsSpecializationOf("leaf", "root"));  // transitive
  EXPECT_TRUE(catalog.IsSpecializationOf("leaf", "leaf"));  // reflexive
  EXPECT_FALSE(catalog.IsSpecializationOf("root", "leaf"));
  EXPECT_FALSE(catalog.AddSpecialization("root", "leaf").ok());  // cycle
  EXPECT_FALSE(catalog.AddSpecialization("ghost", "root").ok());
}

TEST(DomainCatalogTest, BestMatchWithGeneralizationFilter) {
  DomainCatalog catalog;
  ASSERT_TRUE(
      catalog.AddDomain("Section", {"Receipts", "Disbursements"}).ok());
  ASSERT_TRUE(
      catalog.AddDomain("Subsection", {"cash sales", "payment of accounts"})
          .ok());
  ASSERT_TRUE(catalog.AddSpecialization("cash sales", "Receipts").ok());
  ASSERT_TRUE(
      catalog.AddSpecialization("payment of accounts", "Disbursements").ok());
  // Without filter "cash  sales" matches cash sales.
  auto best = catalog.BestMatch("Subsection", "cash sales");
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->item, "cash sales");
  EXPECT_TRUE(best->exact);
  // Filtered to Disbursements specializations, cash sales is excluded.
  std::string parent = "Disbursements";
  best = catalog.BestMatch("Subsection", "cash sales", &parent);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->item, "payment of accounts");
  EXPECT_FALSE(best->exact);
}

TEST(TNormTest, ClassicalProperties) {
  EXPECT_DOUBLE_EQ(CombineScores(TNorm::kMinimum, {0.9, 0.5, 0.7}), 0.5);
  EXPECT_NEAR(CombineScores(TNorm::kProduct, {0.9, 0.5}), 0.45, 1e-12);
  EXPECT_NEAR(CombineScores(TNorm::kLukasiewicz, {0.9, 0.5}), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(CombineScores(TNorm::kLukasiewicz, {0.3, 0.3}), 0.0);
  // Neutral element 1 and empty product.
  for (TNorm norm : {TNorm::kMinimum, TNorm::kProduct, TNorm::kLukasiewicz}) {
    EXPECT_DOUBLE_EQ(CombineScores(norm, {}), 1.0);
    EXPECT_DOUBLE_EQ(CombineScores(norm, {1.0, 1.0}), 1.0);
  }
}

// --- The Fig. 7 match (P6) -------------------------------------------------

class Figure7Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = ocr::CashBudgetFixture::PaperExample(false);
    ASSERT_TRUE(db.ok());
    auto catalog = ocr::CashBudgetFixture::BuildCatalog(*db);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(catalog).value();
    patterns_ = ocr::CashBudgetFixture::BuildPatterns();
  }

  DomainCatalog catalog_;
  std::vector<RowPattern> patterns_;
};

TEST_F(Figure7Test, MisspelledSubsectionBindsToMostSimilarItem) {
  RowMatcher matcher(&catalog_, patterns_);
  ASSERT_TRUE(matcher.status().ok()) << matcher.status().ToString();
  auto instance = matcher.MatchRow(patterns_[0],
                                   {"2003", "Receipts", "bgnning cesh", "20"});
  ASSERT_TRUE(instance.has_value());
  ASSERT_EQ(instance->cells.size(), 4u);
  // Integer cells and the exact Section match score 100%.
  EXPECT_DOUBLE_EQ(instance->cells[0].score, 1.0);
  EXPECT_EQ(instance->cells[0].item, "2003");
  EXPECT_DOUBLE_EQ(instance->cells[1].score, 1.0);
  EXPECT_EQ(instance->cells[1].item, "Receipts");
  // The third cell binds to "beginning cash" with a sub-100% score — the
  // "90%" of Fig. 7(b) — and is flagged as an msi repair.
  EXPECT_EQ(instance->cells[2].item, "beginning cash");
  EXPECT_LT(instance->cells[2].score, 1.0);
  EXPECT_GT(instance->cells[2].score, 0.7);
  EXPECT_TRUE(instance->cells[2].repaired);
  EXPECT_DOUBLE_EQ(instance->cells[3].score, 1.0);
  // Row score under the (default) minimum t-norm equals the weakest cell.
  EXPECT_DOUBLE_EQ(instance->score, instance->cells[2].score);
}

TEST_F(Figure7Test, HierarchyEdgeRestrictsSubsection) {
  RowMatcher matcher(&catalog_, patterns_);
  // Unfiltered, "total disbursments" would bind to "total disbursements"
  // (similarity ≈ 0.95); but the hierarchy edge restricts the Subsection to
  // specializations of the matched Section ("Receipts"), so the wrapper
  // must pick the best *Receipts* item instead.
  auto instance = matcher.MatchRow(
      patterns_[0], {"2003", "Receipts", "total disbursments", "160"});
  ASSERT_TRUE(instance.has_value());
  EXPECT_EQ(instance->cells[2].item, "total cash receipts");
}

TEST_F(Figure7Test, ArityMismatchRejected) {
  RowMatcher matcher(&catalog_, patterns_);
  EXPECT_FALSE(matcher.MatchRow(patterns_[0], {"2003", "Receipts", "20"})
                   .has_value());
}

TEST_F(Figure7Test, GarbageCellRejectedByFloor) {
  RowMatcher matcher(&catalog_, patterns_);
  EXPECT_FALSE(
      matcher.MatchRow(patterns_[0],
                       {"2003", "zzzzqqqq", "beginning cash", "20"})
          .has_value());
}

TEST_F(Figure7Test, NumericCellRepairsNoiseDigits) {
  RowMatcher matcher(&catalog_, patterns_);
  auto instance = matcher.MatchRow(
      patterns_[0], {"2003", "Receipts", "cash sales", "1O0"});
  ASSERT_TRUE(instance.has_value());
  EXPECT_EQ(instance->cells[3].item, "10");  // digits extracted
  EXPECT_LT(instance->cells[3].score, 1.0);
  EXPECT_TRUE(instance->cells[3].repaired);
}

TEST_F(Figure7Test, MultiRowYearPropagatesThroughGrid) {
  // Example 13: the multi-row Year cell is associated with every adjacent
  // document row.
  auto db = ocr::CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(db.ok());
  const std::string html = ocr::CashBudgetFixture::RenderHtml(*db);
  Wrapper wrapper(&catalog_, patterns_);
  auto result = wrapper.ExtractFromHtml(html);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.tables, 2u);      // one per year
  EXPECT_EQ(result->stats.rows, 20u);
  EXPECT_EQ(result->stats.matched_rows, 20u);
  EXPECT_EQ(result->stats.repaired_cells, 0u);
  // Every row of the first table is bound to year 2003.
  for (const ExtractedRow& row : result->rows) {
    if (row.table_index != 0) continue;
    ASSERT_TRUE(row.instance.has_value());
    EXPECT_EQ(row.instance->cells[0].item, "2003");
  }
}

TEST(RowPatternValidationTest, RejectsMalformedPatterns) {
  DomainCatalog catalog;
  ASSERT_TRUE(catalog.AddDomain("D", {"x"}).ok());
  RowPattern pattern;
  pattern.name = "p";
  EXPECT_FALSE(ValidateRowPattern(catalog, pattern).ok());  // no cells
  pattern.cells.push_back(DomainCell("Nope", "H"));
  EXPECT_FALSE(ValidateRowPattern(catalog, pattern).ok());  // unknown domain
  pattern.cells[0] = DomainCell("D", "H");
  EXPECT_TRUE(ValidateRowPattern(catalog, pattern).ok());
  pattern.cells.push_back(DomainCell("D", "H"));
  EXPECT_FALSE(ValidateRowPattern(catalog, pattern).ok());  // dup headline
  pattern.cells[1] = DomainCellSpecializing("D", "H2", 5);
  EXPECT_FALSE(ValidateRowPattern(catalog, pattern).ok());  // bad edge target
  pattern.cells[1] = DomainCellSpecializing("D", "H2", 0);
  EXPECT_TRUE(ValidateRowPattern(catalog, pattern).ok());
}

TEST(TablePositionsTest, OnlySelectedTablesWrapped) {
  // Two identical tables; the selector keeps only the second (index 1).
  DomainCatalog catalog;
  ASSERT_TRUE(catalog.AddDomain("Kind", {"alpha"}).ok());
  RowPattern pattern;
  pattern.name = "p";
  pattern.cells = {DomainCell("Kind", "K"), IntegerCell("N")};
  const std::string html =
      "<table><tr><td>alpha</td><td>1</td></tr></table>"
      "<table><tr><td>alpha</td><td>2</td></tr></table>";
  Wrapper all(&catalog, {pattern});
  Wrapper second_only(&catalog, {pattern}, {}, {1});
  auto everything = all.ExtractFromHtml(html);
  auto selected = second_only.ExtractFromHtml(html);
  ASSERT_TRUE(everything.ok() && selected.ok());
  EXPECT_EQ(everything->stats.matched_rows, 2u);
  EXPECT_EQ(selected->stats.matched_rows, 1u);
  ASSERT_EQ(selected->rows.size(), 1u);
  EXPECT_EQ(selected->rows[0].table_index, 1u);
  EXPECT_EQ(selected->rows[0].instance->cells[1].item, "2");
}

TEST(MatcherOptionsTest, BestPatternWins) {
  DomainCatalog catalog;
  ASSERT_TRUE(catalog.AddDomain("Kind", {"alpha", "beta"}).ok());
  RowPattern loose;
  loose.name = "loose";
  loose.cells = {StringCell("Any"), IntegerCell("N")};
  RowPattern strict;
  strict.name = "strict";
  strict.cells = {DomainCell("Kind", "K"), IntegerCell("N")};
  RowMatcher matcher(&catalog, {loose, strict});
  HtmlTable table;
  table.rows = {{{"alpha", 1, 1, false}, {"7", 1, 1, false}}};
  auto grid = TableGrid::FromTable(table);
  ASSERT_TRUE(grid.ok());
  auto matches = matcher.MatchGrid(*grid);
  ASSERT_TRUE(matches.ok());
  ASSERT_TRUE((*matches)[0].has_value());
  // Both match with score 1; ties keep the first pattern — but an exact
  // domain hit and a string cell both score 1.0 so "loose" (listed first)
  // wins. Scores being equal, determinism is what matters here.
  EXPECT_EQ((*matches)[0]->pattern_name, "loose");
}

}  // namespace
}  // namespace dart::wrap
