// Tests for the bounded-variable simplex core: bound-flip pivots, the
// Bland's-rule switch on degenerate instances, dual-feasibility of a parent
// basis after a single bound tightening (the branch-and-bound warm-start
// contract), breakdown fallback from a corrupt warm basis, and a randomized
// property test cross-checking warm-started branch-and-bound against the
// exhaustive baseline with objective_is_integral pruning.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "milp/branch_and_bound.h"
#include "milp/exhaustive.h"
#include "milp/model.h"
#include "milp/simplex.h"
#include "util/random.h"

namespace dart::milp {
namespace {

constexpr double kTol = 1e-6;

// --- Bound-flip pivots -----------------------------------------------------

TEST(BoundedSimplexTest, BoundFlipsReachBoxOptimum) {
  // max x + y with a slack constraint x + y <= 100 that never binds: the
  // optimum (3, 3) is reached purely by flipping both columns from their
  // lower to their upper bound — no basis change, so very few iterations.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 3);
  int y = model.AddVariable("y", VarType::kContinuous, 0, 3);
  model.AddRow("loose", {{x, 1.0}, {y, 1.0}}, RowSense::kLe, 100);
  model.SetObjective({{x, 1.0}, {y, 1.0}}, 0, ObjectiveSense::kMaximize);
  LpResult result = SolveLpRelaxation(model);
  ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 6.0, kTol);
  EXPECT_NEAR(result.point[x], 3.0, kTol);
  EXPECT_NEAR(result.point[y], 3.0, kTol);
  // The cold start already places maximize-profitable columns at their upper
  // bound, so the whole solve is at most a handful of pivots — nothing like
  // the old (m+n)-row two-phase restart.
  EXPECT_LE(result.iterations, 4);
}

TEST(BoundedSimplexTest, BoundFlipAgainstBindingRow) {
  // max 2x + y s.t. x + y <= 5, x in [0,4], y in [0,4]. Optimum x=4, y=1:
  // x enters to its own upper bound (a flip), y then rises until the row
  // binds. Checks the flip-capped ratio test against a genuine row limit.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 4);
  int y = model.AddVariable("y", VarType::kContinuous, 0, 4);
  model.AddRow("cap", {{x, 1.0}, {y, 1.0}}, RowSense::kLe, 5);
  model.SetObjective({{x, 2.0}, {y, 1.0}}, 0, ObjectiveSense::kMaximize);
  LpResult result = SolveLpRelaxation(model);
  ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 9.0, kTol);
  EXPECT_NEAR(result.point[x], 4.0, kTol);
  EXPECT_NEAR(result.point[y], 1.0, kTol);
}

// --- Degenerate instances / Bland switch -----------------------------------

TEST(BoundedSimplexTest, DegenerateLpTerminatesWithinBudget) {
  // Beale's classic cycling example (scaled): Dantzig/devex selection alone
  // can cycle; the stall-triggered permanent Bland switch must terminate it.
  // Run under both kernels — the sparse kernel's devex pricing has its own
  // anti-cycling path that this instance must exercise.
  Model model;
  int x1 = model.AddVariable("x1", VarType::kContinuous, 0, 1000);
  int x2 = model.AddVariable("x2", VarType::kContinuous, 0, 1000);
  int x3 = model.AddVariable("x3", VarType::kContinuous, 0, 1000);
  int x4 = model.AddVariable("x4", VarType::kContinuous, 0, 1000);
  model.AddRow("r1", {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
               RowSense::kLe, 0);
  model.AddRow("r2", {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
               RowSense::kLe, 0);
  model.AddRow("r3", {{x3, 1.0}}, RowSense::kLe, 1);
  model.SetObjective({{x1, -0.75}, {x2, 150.0}, {x3, -0.02}, {x4, 6.0}}, 0,
                     ObjectiveSense::kMinimize);
  for (const LpKernel kernel : {LpKernel::kSparse, LpKernel::kDense}) {
    LpOptions options;
    options.kernel = kernel;
    LpResult result = SolveLpRelaxation(model, options);
    ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal)
        << LpKernelName(kernel);
    // Optimum -0.05 at x1 = 0.04, x3 = 1 (r2 and r3 binding).
    EXPECT_NEAR(result.objective, -0.05, 1e-4) << LpKernelName(kernel);
  }
}

// --- Warm starts -----------------------------------------------------------

TEST(BoundedSimplexTest, WarmResolveAfterBoundTighteningIsCheap) {
  // Solve once cold, tighten one variable's upper bound below its optimal
  // value (exactly what a branch-and-bound down-child does), and re-solve
  // warm: the parent basis is dual-feasible for the child, so the re-solve
  // must complete on the warm path in a handful of dual pivots and agree
  // with a fresh cold solve.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 10);
  int y = model.AddVariable("y", VarType::kContinuous, 0, 10);
  int z = model.AddVariable("z", VarType::kContinuous, 0, 10);
  model.AddRow("r1", {{x, 1.0}, {y, 1.0}, {z, 1.0}}, RowSense::kLe, 12);
  model.AddRow("r2", {{x, 2.0}, {y, 1.0}}, RowSense::kLe, 14);
  model.AddRow("r3", {{y, 1.0}, {z, 2.0}}, RowSense::kLe, 16);
  model.SetObjective({{x, 3.0}, {y, 2.0}, {z, 2.0}}, 0,
                     ObjectiveSense::kMaximize);

  StandardForm form(model);
  LpScratch scratch;
  LpResult parent;
  LpBasis parent_basis;
  SolveLpWarm(form, {}, form.var_lower, form.var_upper, /*warm=*/nullptr,
              &scratch, &parent, &parent_basis);
  ASSERT_EQ(parent.status, LpResult::SolveStatus::kOptimal);
  ASSERT_GT(parent.point[x], 1.0 + kTol);  // the branch below cuts it off

  std::vector<double> child_upper = form.var_upper;
  child_upper[x] = 1.0;  // "x <= 1" down-branch
  LpResult child;
  SolveLpWarm(form, {}, form.var_lower, child_upper, &parent_basis, &scratch,
              &child, /*final_basis=*/nullptr);
  ASSERT_EQ(child.status, LpResult::SolveStatus::kOptimal);
  EXPECT_TRUE(child.warm_started);
  EXPECT_LE(child.iterations, 10);
  EXPECT_LE(child.point[x], 1.0 + kTol);

  LpResult fresh = SolveLpRelaxation(model, {}, &form.var_lower, &child_upper);
  ASSERT_EQ(fresh.status, LpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(child.objective, fresh.objective, kTol);
}

TEST(BoundedSimplexTest, WarmResolveRefactorizesWhenScratchIsStale) {
  // A stolen node lands on a worker whose scratch holds some *other* basis:
  // the warm solve must refactorize the snapshot (it cannot reuse the
  // tableau) and still complete on the warm path. Reproduced here by solving
  // a sibling's bounds in between, which overwrites the scratch tableau.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 10);
  int y = model.AddVariable("y", VarType::kContinuous, 0, 10);
  int z = model.AddVariable("z", VarType::kContinuous, 0, 10);
  model.AddRow("r1", {{x, 1.0}, {y, 1.0}, {z, 1.0}}, RowSense::kLe, 12);
  model.AddRow("r2", {{x, 2.0}, {y, 1.0}}, RowSense::kLe, 14);
  model.AddRow("r3", {{y, 1.0}, {z, 2.0}}, RowSense::kLe, 16);
  model.SetObjective({{x, 3.0}, {y, 2.0}, {z, 2.0}}, 0,
                     ObjectiveSense::kMaximize);
  StandardForm form(model);
  LpScratch scratch;
  LpResult parent;
  LpBasis parent_basis;
  SolveLpWarm(form, {}, form.var_lower, form.var_upper, nullptr, &scratch,
              &parent, &parent_basis);
  ASSERT_EQ(parent.status, LpResult::SolveStatus::kOptimal);

  // Sibling solve under different bounds: clobbers the scratch tableau.
  std::vector<double> sibling_upper = form.var_upper;
  sibling_upper[y] = 0.0;
  LpResult sibling;
  SolveLpCached(form, {}, form.var_lower, sibling_upper, &scratch, &sibling);
  ASSERT_EQ(sibling.status, LpResult::SolveStatus::kOptimal);

  std::vector<double> child_upper = form.var_upper;
  child_upper[x] = 1.0;
  LpResult child;
  SolveLpWarm(form, {}, form.var_lower, child_upper, &parent_basis, &scratch,
              &child, nullptr);
  ASSERT_EQ(child.status, LpResult::SolveStatus::kOptimal);
  EXPECT_TRUE(child.warm_started);  // refactorization, not cold fallback
  LpResult fresh = SolveLpRelaxation(model, {}, &form.var_lower, &child_upper);
  EXPECT_NEAR(child.objective, fresh.objective, kTol);
}

TEST(BoundedSimplexTest, WarmResolveDetectsChildInfeasibility) {
  // Tightening can also empty the feasible region; the dual phase must then
  // produce a trustworthy infeasibility certificate on the warm path.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 10);
  model.AddRow("floor", {{x, 1.0}}, RowSense::kGe, 6);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  StandardForm form(model);
  LpScratch scratch;
  LpResult parent;
  LpBasis parent_basis;
  SolveLpWarm(form, {}, form.var_lower, form.var_upper, nullptr, &scratch,
              &parent, &parent_basis);
  ASSERT_EQ(parent.status, LpResult::SolveStatus::kOptimal);

  std::vector<double> child_upper = {5.0};  // x <= 5 contradicts x >= 6
  LpResult child;
  SolveLpWarm(form, {}, form.var_lower, child_upper, &parent_basis, &scratch,
              &child, nullptr);
  EXPECT_EQ(child.status, LpResult::SolveStatus::kInfeasible);
}

// --- Breakdown fallback (regression for kUnbounded mis-reporting) ----------

TEST(BoundedSimplexTest, CorruptWarmBasisFallsBackToColdSolve) {
  // A structurally nonsensical snapshot (duplicate basic columns → singular
  // refactorization) must not poison the result: the solver falls back to a
  // cold solve and still returns the true optimum, with warm_started=false.
  // This is the regression test for the breakdown path that previously could
  // surface a spurious kUnbounded.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 10);
  int y = model.AddVariable("y", VarType::kContinuous, 0, 10);
  model.AddRow("r1", {{x, 1.0}, {y, 1.0}}, RowSense::kLe, 7);
  model.AddRow("r2", {{x, 1.0}, {y, -1.0}}, RowSense::kGe, -3);
  model.SetObjective({{x, 1.0}, {y, 2.0}}, 0, ObjectiveSense::kMaximize);
  StandardForm form(model);

  const int cols = form.n + form.m_model;
  LpBasis corrupt;
  corrupt.basis.assign(form.m_model, 0);  // column 0 "basic" in every row
  corrupt.status.assign(cols, kAtLower);
  corrupt.status[0] = kBasic;

  // Both kernels must survive the singular snapshot: the sparse kernel's
  // FactorizeBasis detects singularity, the dense kernel's refactorization
  // pivot search does; each falls back to a cold solve.
  for (const LpKernel kernel : {LpKernel::kSparse, LpKernel::kDense}) {
    LpOptions options;
    options.kernel = kernel;
    LpScratch scratch;
    LpResult result;
    SolveLpWarm(form, options, form.var_lower, form.var_upper, &corrupt,
                &scratch, &result, nullptr);
    ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal)
        << LpKernelName(kernel);
    EXPECT_FALSE(result.warm_started) << LpKernelName(kernel);
    LpResult reference = SolveLpRelaxation(model, options);
    EXPECT_NEAR(result.objective, reference.objective, kTol)
        << LpKernelName(kernel);
  }
}

TEST(BoundedSimplexTest, WarmBasisWithWrongShapeFallsBackToColdSolve) {
  // Size-mismatched snapshots (e.g. from a different model) are rejected
  // before any numeric work; the solve completes cold and correct.
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 4);
  model.AddRow("r", {{x, 1.0}}, RowSense::kLe, 3);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMaximize);
  StandardForm form(model);
  LpBasis wrong;
  wrong.basis = {0, 1, 2};  // three rows for a one-row model
  wrong.status = {kBasic};
  LpScratch scratch;
  LpResult result;
  SolveLpWarm(form, {}, form.var_lower, form.var_upper, &wrong, &scratch,
              &result, nullptr);
  ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal);
  EXPECT_FALSE(result.warm_started);
  EXPECT_NEAR(result.objective, 3.0, kTol);
}

TEST(BoundedSimplexTest, StatusAtInfiniteUpperBoundIsRejected) {
  // A snapshot claiming a slack sits at its (infinite) upper bound is
  // invalid; the solver must detect it and fall back rather than compute
  // with an infinite "value".
  Model model;
  int x = model.AddVariable("x", VarType::kContinuous, 0, 4);
  model.AddRow("r", {{x, 1.0}}, RowSense::kLe, 3);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMaximize);
  StandardForm form(model);
  LpBasis bad;
  bad.basis = {form.n};               // the slack is basic...
  bad.status = {kAtUpper, kAtUpper};  // ...but claims x AND slack at upper
  bad.status[0] = kAtUpper;           // x at upper: fine (finite)
  bad.basis = {0};                    // x basic, slack nonbasic at +inf: bad
  bad.status = {kBasic, kAtUpper};
  LpScratch scratch;
  LpResult result;
  SolveLpWarm(form, {}, form.var_lower, form.var_upper, &bad, &scratch,
              &result, nullptr);
  ASSERT_EQ(result.status, LpResult::SolveStatus::kOptimal);
  EXPECT_FALSE(result.warm_started);
  EXPECT_NEAR(result.objective, 3.0, kTol);
}

// --- Warm-started B&B vs exhaustive (randomized property test) -------------

class WarmStartAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(WarmStartAgreementTest, WarmBranchAndBoundMatchesExhaustive) {
  Rng rng(52000 + GetParam());
  // Random pure-binary models with integer coefficients: the objective is
  // provably integral on integral points, so objective_is_integral pruning
  // is sound and exercised together with the warm-start path.
  Model model;
  std::vector<int> vars;
  for (int i = 0; i < 8; ++i) {
    vars.push_back(
        model.AddVariable("b" + std::to_string(i), VarType::kBinary, 0, 1));
  }
  for (int r = 0; r < 5; ++r) {
    std::vector<LinearTerm> terms;
    for (int v : vars) {
      if (rng.Bernoulli(0.6)) {
        terms.push_back({v, static_cast<double>(rng.UniformInt(-4, 4))});
      }
    }
    if (terms.empty()) continue;
    RowSense sense = rng.Bernoulli(0.3)
                         ? RowSense::kGe
                         : (rng.Bernoulli(0.15) ? RowSense::kEq
                                                : RowSense::kLe);
    model.AddRow("r" + std::to_string(r), terms, sense,
                 static_cast<double>(rng.UniformInt(-6, 10)));
  }
  std::vector<LinearTerm> objective;
  for (int v : vars) {
    objective.push_back({v, static_cast<double>(rng.UniformInt(-5, 5))});
  }
  model.SetObjective(objective, 0, ObjectiveSense::kMinimize);

  MilpResult exhaustive = SolveByBinaryEnumeration(model);
  for (const bool warm : {true, false}) {
    obs::RunContext run;
    MilpOptions options;
    options.run = &run;
    options.search.use_warm_start = warm;
    options.objective_is_integral = true;
    MilpResult solved = SolveMilp(model, options);
    ASSERT_EQ(solved.status == MilpResult::SolveStatus::kOptimal,
              exhaustive.status == MilpResult::SolveStatus::kOptimal)
        << "warm=" << warm << " seed=" << GetParam();
    if (solved.status == MilpResult::SolveStatus::kOptimal) {
      EXPECT_NEAR(solved.objective, exhaustive.objective, 1e-5)
          << "warm=" << warm << " seed=" << GetParam();
      EXPECT_TRUE(IsFeasiblePoint(model, solved.point, 1e-5));
    } else {
      EXPECT_TRUE(IsInfeasibleStatus(solved.status));
    }
    if (!warm) {
      EXPECT_EQ(run.metrics().Snapshot().Counter("milp.lp_warm_solves"), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, WarmStartAgreementTest,
                         ::testing::Range(0, 30));

// --- Sparse vs dense kernel equivalence (randomized property test) ---------

class KernelEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelEquivalenceTest, SparseMatchesDenseOnRandomBoundedLps) {
  // Random boxed continuous LPs (never unbounded by construction): the
  // sparse revised simplex and the dense tableau oracle must agree on the
  // status and, when optimal, on the objective to 1e-6 — on the cold solve
  // AND on a warm dual re-solve after a branch-style bound tightening.
  Rng rng(77000 + GetParam());
  Model model;
  const int n = 5 + GetParam() % 4;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) {
    const double lo = static_cast<double>(rng.UniformInt(-4, 0));
    const double hi = lo + static_cast<double>(rng.UniformInt(1, 9));
    vars.push_back(model.AddVariable("x" + std::to_string(i),
                                     VarType::kContinuous, lo, hi));
  }
  const int rows = 3 + GetParam() % 3;
  for (int r = 0; r < rows; ++r) {
    std::vector<LinearTerm> terms;
    for (int v : vars) {
      if (rng.Bernoulli(0.5)) {
        terms.push_back({v, static_cast<double>(rng.UniformInt(-4, 4))});
      }
    }
    if (terms.empty()) continue;
    RowSense sense = rng.Bernoulli(0.3)
                         ? RowSense::kGe
                         : (rng.Bernoulli(0.15) ? RowSense::kEq
                                                : RowSense::kLe);
    model.AddRow("r" + std::to_string(r), terms, sense,
                 static_cast<double>(rng.UniformInt(-8, 12)));
  }
  std::vector<LinearTerm> objective;
  for (int v : vars) {
    objective.push_back({v, static_cast<double>(rng.UniformInt(-5, 5))});
  }
  model.SetObjective(objective, 0,
                     rng.Bernoulli(0.5) ? ObjectiveSense::kMinimize
                                        : ObjectiveSense::kMaximize);

  LpOptions sparse_opts, dense_opts;
  sparse_opts.kernel = LpKernel::kSparse;
  dense_opts.kernel = LpKernel::kDense;

  LpResult dense = SolveLpRelaxation(model, dense_opts);
  LpResult sparse = SolveLpRelaxation(model, sparse_opts);
  ASSERT_EQ(sparse.status, dense.status) << "seed=" << GetParam();
  // The dense oracle never touches the sparse counters.
  EXPECT_EQ(dense.refactorizations, 0);
  EXPECT_EQ(dense.eta_updates, 0);
  EXPECT_EQ(dense.ftran, 0);
  EXPECT_EQ(dense.btran, 0);
  if (dense.status != LpResult::SolveStatus::kOptimal) return;
  EXPECT_NEAR(sparse.objective, dense.objective, kTol)
      << "seed=" << GetParam();

  // Warm re-solve after tightening one variable, mirroring a down-branch.
  StandardForm form(model);
  std::vector<double> child_upper = form.var_upper;
  const int cut = GetParam() % n;
  child_upper[cut] =
      form.var_lower[cut] + 0.5 * (form.var_upper[cut] - form.var_lower[cut]);
  LpResult warm_by_kernel[2];
  int i = 0;
  for (const LpKernel kernel : {LpKernel::kSparse, LpKernel::kDense}) {
    LpOptions options;
    options.kernel = kernel;
    LpScratch scratch;
    LpResult parent;
    LpBasis basis;
    SolveLpWarm(form, options, form.var_lower, form.var_upper, nullptr,
                &scratch, &parent, &basis);
    ASSERT_EQ(parent.status, LpResult::SolveStatus::kOptimal)
        << LpKernelName(kernel) << " seed=" << GetParam();
    SolveLpWarm(form, options, form.var_lower, child_upper, &basis, &scratch,
                &warm_by_kernel[i++], nullptr);
  }
  ASSERT_EQ(warm_by_kernel[0].status, warm_by_kernel[1].status)
      << "seed=" << GetParam();
  if (warm_by_kernel[0].status == LpResult::SolveStatus::kOptimal) {
    EXPECT_NEAR(warm_by_kernel[0].objective, warm_by_kernel[1].objective,
                kTol)
        << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, KernelEquivalenceTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace dart::milp
