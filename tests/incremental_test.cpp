// Tests for the session-scoped incremental repair state
// (repair/incremental.h): 30-seed parity of IncrementalRepairSession against
// the from-scratch RepairEngine oracle over growing pin sequences, full
// validation-session parity (rejection-heavy operators, multi-document
// corpora, batch-limited examination), dirty/clean component accounting,
// per-component big-M retries triggered by a pin on an already-initialized
// session, pin removal, and the repair.incremental.* observability contract.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../bench/bench_util.h"
#include "constraints/eval.h"
#include "constraints/parser.h"
#include "repair/engine.h"
#include "repair/incremental.h"
#include "validation/operator.h"
#include "validation/session.h"

namespace dart::repair {
namespace {

// The incremental session must be indistinguishable from the from-scratch
// engine on every iteration of a validation loop. This drives both through
// the same growing pin sequence — iteration k pins the first k injected
// errors to their true source values, exactly what operator rejections
// produce — and asserts the optimum (repair cardinality = the unweighted
// MILP objective, which is unique even when the argmin is not) matches step
// for step. verify_result stays on, so every incremental repair is also
// consistency-checked and pin-checked internally before it is compared.
TEST(IncrementalParityTest, MatchesEngineOverPinSequencesAcrossSeeds) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const bench::Scenario scenario = bench::MakeMultiDocScenario(
        seed, /*docs=*/2, /*years=*/2, /*errors_per_doc=*/2);
    RepairEngineOptions options;
    // Odd seeds run the parallel batch scheduler underneath the incremental
    // session, exercising the BatchModel::root_basis plumbing.
    options.milp.search.num_threads = seed % 2 == 0 ? 1 : 2;
    RepairEngine engine(options);
    IncrementalRepairSession session(scenario.acquired, scenario.constraints,
                                     options);

    std::vector<FixedValue> pins;
    for (size_t step = 0; step <= scenario.errors.size(); ++step) {
      if (step > 0) {
        const ocr::InjectedError& error = scenario.errors[step - 1];
        pins.push_back(FixedValue{error.cell, error.true_value.AsReal()});
      }
      auto oracle =
          engine.ComputeRepair(scenario.acquired, scenario.constraints, pins);
      auto incremental = session.ComputeRepair(pins);
      ASSERT_TRUE(oracle.ok())
          << "seed=" << seed << " step=" << step << ": "
          << oracle.status().ToString();
      ASSERT_TRUE(incremental.ok())
          << "seed=" << seed << " step=" << step << ": "
          << incremental.status().ToString();
      EXPECT_EQ(oracle->already_consistent, incremental->already_consistent)
          << "seed=" << seed << " step=" << step;
      EXPECT_EQ(oracle->repair.cardinality(), incremental->repair.cardinality())
          << "seed=" << seed << " step=" << step;
      // Both repairs must actually repair: identical consistency verdicts on
      // the patched databases (both engines verified internally already, but
      // check through the public surface too).
      auto oracle_db = oracle->repair.Applied(scenario.acquired);
      auto incremental_db = incremental->repair.Applied(scenario.acquired);
      ASSERT_TRUE(oracle_db.ok() && incremental_db.ok());
      cons::ConsistencyChecker checker(&scenario.constraints);
      EXPECT_EQ(*checker.IsConsistent(*oracle_db),
                *checker.IsConsistent(*incremental_db))
          << "seed=" << seed << " step=" << step;
    }
    // With every injected error pinned to its true value the repair must
    // restore consistency.
    auto final_outcome = session.ComputeRepair(pins);
    ASSERT_TRUE(final_outcome.ok());
    auto repaired = final_outcome->repair.Applied(scenario.acquired);
    ASSERT_TRUE(repaired.ok());
    cons::ConsistencyChecker checker(&scenario.constraints);
    EXPECT_TRUE(*checker.IsConsistent(*repaired)) << "seed=" << seed;
  }
}

// Full-loop parity: the supervised session run with the incremental state
// must land on the same final database as the from-scratch oracle loop.
// A batch size of 1 maximizes iteration
// count (every iteration re-solves), and three errors per document keep the
// operator busy rejecting compensating fixes. Note equality to *truth* is not
// guaranteed by either mode — a seed whose injected errors cancel inside
// every constraint yields an already-consistent (but wrong) database that the
// loop rightly never touches — so the invariant is mode parity plus
// consistency, not truth recovery.
TEST(IncrementalParityTest, ValidationSessionsMatchOracleAcrossSeeds) {
  for (uint64_t seed = 100; seed < 115; ++seed) {
    const bench::Scenario scenario = bench::MakeMultiDocScenario(
        seed, /*docs=*/2, /*years=*/1, /*errors_per_doc=*/3);
    validation::SimulatedOperator op(&scenario.truth);
    validation::SessionResult results[2];
    for (bool incremental : {false, true}) {
      validation::SessionOptions options;
      options.use_incremental = incremental;
      options.examine_batch = 1;
      auto result = validation::RunValidationSession(
          scenario.acquired, scenario.constraints, op, options);
      ASSERT_TRUE(result.ok()) << "seed=" << seed
                               << " incremental=" << incremental << ": "
                               << result.status().ToString();
      EXPECT_TRUE(result->converged);
      cons::ConsistencyChecker checker(&scenario.constraints);
      EXPECT_TRUE(*checker.IsConsistent(result->repaired))
          << "seed=" << seed << " incremental=" << incremental;
      results[incremental ? 1 : 0] = std::move(*result);
    }
    // Trajectories may differ (tied optima: a cached component optimum and a
    // fresh solve can pick different card-minimal repairs, steering the
    // operator to different cells first) but both loops must land on the
    // same validated database.
    EXPECT_EQ(*results[0].repaired.CountDifferences(results[1].repaired), 0u)
        << "seed=" << seed;
  }
}

// A pin touches exactly one component: everything else must be served from
// the cache, and the repair.incremental.* counters must say so.
TEST(IncrementalRepairSessionTest, PinDirtiesOnlyItsComponentAndCountsIt) {
  const bench::Scenario scenario = bench::MakeMultiDocScenario(
      /*seed=*/7, /*docs=*/3, /*years=*/2, /*errors_per_doc=*/1);
  obs::RunContext run;
  RepairEngineOptions options;
  options.run = &run;
  IncrementalRepairSession session(scenario.acquired, scenario.constraints,
                                   options);

  auto first = session.ComputeRepair();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(session.initialized());
  // Documents never share a ground row, so there are at least three
  // components; the first call solves all of them.
  EXPECT_GE(session.num_components(), 3);
  EXPECT_EQ(session.last_dirty_components(), session.num_components());
  EXPECT_EQ(session.last_clean_reused(), 0);

  // Re-pinning nothing: the whole decomposition is clean, the translation is
  // skipped, and the cached stitch returns the identical repair.
  auto second = session.ComputeRepair();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->repair.cardinality(), first->repair.cardinality());
  EXPECT_EQ(session.last_dirty_components(), 0);
  EXPECT_EQ(session.last_clean_reused(), session.num_components());

  // One pin in one document: exactly one dirty component.
  std::vector<FixedValue> pins{FixedValue{
      scenario.errors[0].cell, scenario.errors[0].true_value.AsReal()}};
  auto third = session.ComputeRepair(pins);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(session.last_dirty_components(), 1);
  EXPECT_EQ(session.last_clean_reused(), session.num_components() - 1);

  // Removing the pin dirties the same single component again and returns to
  // the unpinned optimum.
  auto fourth = session.ComputeRepair();
  ASSERT_TRUE(fourth.ok()) << fourth.status().ToString();
  EXPECT_EQ(session.last_dirty_components(), 1);
  EXPECT_EQ(fourth->repair.cardinality(), first->repair.cardinality());

  const obs::MetricsSnapshot snap = run.metrics().Snapshot();
  EXPECT_EQ(snap.Counter("repair.incremental.translate_skipped"), 3);
  EXPECT_EQ(snap.Counter("repair.incremental.dirty_components"),
            static_cast<int64_t>(session.num_components()) + 2);
  // Calls 2..4 reused n, n-1 and n-1 clean components respectively.
  EXPECT_EQ(snap.Counter("repair.incremental.clean_reused"),
            3 * static_cast<int64_t>(session.num_components()) - 2);
}

// The adaptive big-M machinery must work per component on an
// already-initialized session: a pin that pushes a component's required
// values outside its current (already once-grown) z box makes that component
// infeasible, the session must enlarge only that component's M and re-solve,
// and the result must match a from-scratch engine handed the same pins.
TEST(IncrementalRepairSessionTest, BigMRetryInsideDirtyComponent) {
  rel::Database db;
  {
    auto schema = rel::RelationSchema::Create(
        "Ledger", {{"Year", rel::Domain::kInt, false},
                   {"Balance", rel::Domain::kInt, true}});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(db.AddRelation(*schema).ok());
    rel::Relation* ledger = db.FindRelation("Ledger");
    for (int64_t year : {1, 2}) {
      ASSERT_TRUE(
          ledger->Insert({rel::Value(year), rel::Value(int64_t{1})}).ok());
      ASSERT_TRUE(
          ledger->Insert({rel::Value(year), rel::Value(int64_t{2})}).ok());
    }
  }
  const char* program = R"(
agg bal(x) := sum(Balance) from Ledger where Year = x;
constraint target: Ledger(y, _) => bal(y) = 1000;
)";
  cons::ConstraintSet constraints;
  Status parsed =
      cons::ParseConstraintProgram(db.Schema(), program, &constraints);
  ASSERT_TRUE(parsed.ok()) << parsed.ToString();

  // fixed_value = 50 sticks (the translator only floors it at 1 + max |v| =
  // 3 without pins), so the unpinned first call must grow M ×100 per year
  // component before z_a + z_b = 1000 becomes representable.
  RepairEngineOptions options;
  options.translator.big_m.fixed_value = 50;
  IncrementalRepairSession session(db, constraints, options);
  auto first = session.ComputeRepair();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GE(first->stats.bigm_retries, 1);
  EXPECT_EQ(first->repair.cardinality(), 2u);
  EXPECT_EQ(session.num_components(), 2);

  // Pinning year 1's first cell to -4500 forces its partner to 5500 — past
  // the once-grown z box of 5000 — so the dirty component must come back
  // infeasible and trigger another ×100 growth, while year 2 stays cached.
  std::vector<FixedValue> pins{
      FixedValue{rel::CellRef{"Ledger", 0, 1}, -4500.0}};
  auto second = session.ComputeRepair(pins);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GE(second->stats.bigm_retries, 1);
  EXPECT_EQ(session.last_dirty_components(), 1);
  EXPECT_EQ(session.last_clean_reused(), 1);

  RepairEngine engine(options);
  auto oracle = engine.ComputeRepair(db, constraints, pins);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_EQ(second->repair.cardinality(), oracle->repair.cardinality());
}

// Contradictory pins on one cell are infeasible (the translator would emit
// two irreconcilable pin rows), and pins on unknown cells are rejected with
// the translator's wording.
TEST(IncrementalRepairSessionTest, RejectsBadPinSets) {
  const bench::Scenario scenario =
      bench::MakeBudgetScenario(/*seed=*/3, /*years=*/1, /*num_errors=*/1);
  IncrementalRepairSession session(scenario.acquired, scenario.constraints);
  const rel::CellRef cell = scenario.errors[0].cell;

  auto contradictory = session.ComputeRepair(
      {FixedValue{cell, 10.0}, FixedValue{cell, 20.0}});
  ASSERT_FALSE(contradictory.ok());
  EXPECT_EQ(contradictory.status().code(), StatusCode::kInfeasible);

  auto unknown = session.ComputeRepair(
      {FixedValue{rel::CellRef{"NoSuchRelation", 0, 0}, 1.0}});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  // The session survives a failed call: a valid pin set still solves.
  auto ok = session.ComputeRepair(
      {FixedValue{cell, scenario.errors[0].true_value.AsReal()}});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

// Incremental is the default session mode, and the exhaustive baseline
// falls back to the from-scratch path (it exists to cross-check the
// branch-and-bound solver, so it must keep solving whole instances).
TEST(IncrementalRepairSessionTest, SessionDefaultsToIncremental) {
  validation::SessionOptions options;
  EXPECT_TRUE(options.use_incremental);
}

}  // namespace
}  // namespace dart::repair
