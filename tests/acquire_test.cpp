// Tests for the acquisition substrate: the .pos positional format
// round-trips, the layout analyzer reconstructs tables (including multi-row
// cells and stacked tables), and a scanned cash budget flows through the
// complete pipeline identically to the HTML path.

#include <gtest/gtest.h>

#include "acquire/layout.h"
#include "acquire/positional.h"
#include "core/pipeline.h"
#include "ocr/cash_budget.h"
#include "wrapper/table_grid.h"

namespace dart::acquire {
namespace {

TextBox Box(double x, double y, double w, double h, std::string text) {
  return TextBox{x, y, w, h, std::move(text)};
}

TEST(PositionalFormatTest, RoundTrip) {
  PositionalDocument document;
  document.pages.emplace_back();
  document.pages[0].boxes.push_back(Box(1.5, 2, 30, 10, "hello world"));
  document.pages[0].boxes.push_back(Box(40, 2, 20, 10, "42"));
  document.pages.emplace_back();
  document.pages[1].boxes.push_back(Box(0, 0, 5, 5, "p2"));

  auto parsed = ReadPositional(WritePositional(document));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->pages.size(), 2u);
  ASSERT_EQ(parsed->pages[0].boxes.size(), 2u);
  EXPECT_EQ(parsed->pages[0].boxes[0].text, "hello world");
  EXPECT_DOUBLE_EQ(parsed->pages[0].boxes[0].x, 1.5);
  EXPECT_EQ(parsed->pages[1].boxes[0].text, "p2");
}

TEST(PositionalFormatTest, ParseErrors) {
  EXPECT_FALSE(ReadPositional("box 1 2 3 4 text\n").ok());  // box before page
  EXPECT_FALSE(ReadPositional("page\nbox 1 2 3 oops\n").ok());
  EXPECT_FALSE(ReadPositional("page\nwhatisthis\n").ok());
  // Comments and blank lines are fine.
  auto ok = ReadPositional("# comment\n\npage\nbox 1 2 3 4 x\n");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->TotalBoxes(), 1u);
}

TEST(LayoutTest, SimpleGridReconstruction) {
  Page page;
  // 2×2 grid.
  page.boxes = {Box(0, 0, 10, 10, "a"), Box(50, 0, 10, 10, "b"),
                Box(0, 20, 10, 10, "c"), Box(50, 20, 10, 10, "d")};
  auto tables = ReconstructTables(page);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(tables->size(), 1u);
  const wrap::HtmlTable& table = (*tables)[0];
  ASSERT_EQ(table.rows.size(), 2u);
  ASSERT_EQ(table.rows[0].size(), 2u);
  EXPECT_EQ(table.rows[0][0].text, "a");
  EXPECT_EQ(table.rows[1][1].text, "d");
}

TEST(LayoutTest, VerticalSpanBecomesRowspan) {
  Page page;
  // Left box spans both rows.
  page.boxes = {Box(0, 0, 10, 30, "tall"), Box(50, 0, 10, 10, "r1"),
                Box(50, 20, 10, 10, "r2")};
  auto tables = ReconstructTables(page);
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->size(), 1u);
  const wrap::HtmlTable& table = (*tables)[0];
  ASSERT_EQ(table.rows.size(), 2u);
  ASSERT_EQ(table.rows[0].size(), 2u);
  EXPECT_EQ(table.rows[0][0].text, "tall");
  EXPECT_EQ(table.rows[0][0].rowspan, 2);
  EXPECT_EQ(table.rows[1].size(), 1u);  // spanned position not re-emitted
}

TEST(LayoutTest, HorizontalSpanBecomesColspan) {
  Page page;
  page.boxes = {Box(0, 0, 70, 10, "wide header"), Box(0, 20, 10, 10, "a"),
                Box(60, 20, 10, 10, "b")};
  auto tables = ReconstructTables(page);
  ASSERT_TRUE(tables.ok());
  const wrap::HtmlTable& table = (*tables)[0];
  EXPECT_EQ(table.rows[0][0].colspan, 2);
}

TEST(LayoutTest, LargeGapSplitsTables) {
  Page page;
  page.boxes = {Box(0, 0, 10, 10, "t1a"), Box(50, 0, 10, 10, "t1b"),
                Box(0, 200, 10, 10, "t2a"), Box(50, 200, 10, 10, "t2b")};
  auto tables = ReconstructTables(page);
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->size(), 2u);
  EXPECT_EQ((*tables)[0].rows[0][0].text, "t1a");
  EXPECT_EQ((*tables)[1].rows[0][0].text, "t2a");
}

TEST(LayoutTest, EmptyPageYieldsNoTables) {
  auto tables = ReconstructTables(Page{});
  ASSERT_TRUE(tables.ok());
  EXPECT_TRUE(tables->empty());
}

TEST(LayoutTest, ScannedBudgetMatchesHtmlRendering) {
  // The positional rendering of the Fig. 1 document must reconstruct into
  // the same grid content as the direct HTML rendering.
  auto db = ocr::CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(db.ok());
  PositionalDocument scan = ocr::CashBudgetFixture::RenderPositional(*db);
  EXPECT_EQ(scan.pages.size(), 1u);
  auto html = ConvertToHtml(scan);
  ASSERT_TRUE(html.ok()) << html.status().ToString();
  auto tables = wrap::ParseHtmlTables(*html);
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->size(), 2u);  // one table per year
  auto grid = wrap::TableGrid::FromTable((*tables)[0]);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->num_rows(), 10u);
  EXPECT_EQ(grid->num_cols(), 4u);
  EXPECT_EQ(grid->At(0, 0).text, "2003");
  EXPECT_EQ(grid->At(9, 0).text, "2003");            // rowspan filled
  EXPECT_EQ(grid->At(3, 2).text, "total cash receipts");
  EXPECT_EQ(grid->At(3, 3).text, "250");
}

TEST(LayoutTest, EndToEndPipelineFromScan) {
  auto truth = ocr::CashBudgetFixture::PaperExample(false);
  auto acquired = ocr::CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(truth.ok() && acquired.ok());
  core::AcquisitionMetadata metadata;
  auto catalog = ocr::CashBudgetFixture::BuildCatalog(*truth);
  auto mapping = ocr::CashBudgetFixture::BuildMapping(*truth);
  ASSERT_TRUE(catalog.ok() && mapping.ok());
  metadata.catalog = std::move(catalog).value();
  metadata.patterns = ocr::CashBudgetFixture::BuildPatterns();
  metadata.mappings = {std::move(mapping).value()};
  metadata.constraint_program = ocr::CashBudgetFixture::ConstraintProgram();
  auto pipeline = core::DartPipeline::Create(std::move(metadata));
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  PositionalDocument scan =
      ocr::CashBudgetFixture::RenderPositional(*acquired);
  auto outcome = pipeline->Submit(core::ProcessRequest::FromPositional(scan));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(*outcome->acquisition.database.CountDifferences(*acquired), 0u);
  ASSERT_EQ(outcome->repair.repair.cardinality(), 1u);
  EXPECT_EQ(outcome->repair.repair.updates()[0].new_value, rel::Value(220));
}

TEST(LayoutTest, NoisyScanSurvivesReconstruction) {
  Rng rng(777);
  auto db = ocr::CashBudgetFixture::PaperExample(false);
  ASSERT_TRUE(db.ok());
  ocr::NoiseModel noise({0.2, 0.2, 1, 2}, &rng);
  PositionalDocument scan =
      ocr::CashBudgetFixture::RenderPositional(*db, &noise);
  auto html = ConvertToHtml(scan);
  ASSERT_TRUE(html.ok());
  auto tables = wrap::ParseHtmlTables(*html);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->size(), 2u);  // noise changes text, never geometry count
}

}  // namespace
}  // namespace dart::acquire
