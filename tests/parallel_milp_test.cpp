// Tests for the parallel branch-and-bound scheduler and the cached
// bounded-variable LP core: thread-count invariance of the optimum (property
// test against the exhaustive baseline), the serial regression on the
// Fig. 4 / Example 11 paper instance, the two infeasibility statuses, and
// scratch-reuse equivalence of SolveLpCached.

#include <gtest/gtest.h>

#include <cmath>

#include "constraints/parser.h"
#include "milp/branch_and_bound.h"
#include "milp/exhaustive.h"
#include "milp/model.h"
#include "milp/scheduler.h"
#include "milp/simplex.h"
#include "ocr/cash_budget.h"
#include "repair/engine.h"
#include "repair/translator.h"
#include "util/random.h"

namespace dart::milp {
namespace {

constexpr double kTol = 1e-6;

// --- Infeasibility statuses (the former dead-ternary at the end of
// SolveMilp always produced kInfeasible; the no-feasible-LP case must now be
// distinguished). -----------------------------------------------------------

TEST(InfeasibleStatusTest, LpInfeasibleModelReportsRelaxationStatus) {
  // x >= 6 and x <= 5: even the continuous relaxation is empty.
  Model model;
  int x = model.AddVariable("x", VarType::kInteger, 0, 10);
  model.AddRow("low", {{x, 1.0}}, RowSense::kGe, 6);
  model.AddRow("high", {{x, 1.0}}, RowSense::kLe, 5);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  MilpResult result = SolveMilp(model);
  EXPECT_EQ(result.status, MilpResult::SolveStatus::kLpRelaxationInfeasible);
  EXPECT_TRUE(IsInfeasibleStatus(result.status));
}

TEST(InfeasibleStatusTest, IntegerInfeasibleKeepsPlainInfeasible) {
  // 2x = 3: LP feasible (x = 1.5) but no integer point.
  Model model;
  int x = model.AddVariable("x", VarType::kInteger, 0, 10);
  model.AddRow("odd", {{x, 2.0}}, RowSense::kEq, 3);
  model.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);
  MilpResult result = SolveMilp(model);
  EXPECT_EQ(result.status, MilpResult::SolveStatus::kInfeasible);
  EXPECT_TRUE(IsInfeasibleStatus(result.status));
}

TEST(InfeasibleStatusTest, ParallelAgreesOnBothFlavours) {
  Model lp_infeasible;
  int x = lp_infeasible.AddVariable("x", VarType::kInteger, 0, 10);
  lp_infeasible.AddRow("low", {{x, 1.0}}, RowSense::kGe, 6);
  lp_infeasible.AddRow("high", {{x, 1.0}}, RowSense::kLe, 5);
  lp_infeasible.SetObjective({{x, 1.0}}, 0, ObjectiveSense::kMinimize);

  Model int_infeasible;
  int y = int_infeasible.AddVariable("y", VarType::kInteger, 0, 10);
  int_infeasible.AddRow("odd", {{y, 2.0}}, RowSense::kEq, 3);
  int_infeasible.SetObjective({{y, 1.0}}, 0, ObjectiveSense::kMinimize);

  MilpOptions options;
  options.search.num_threads = 4;
  EXPECT_EQ(SolveMilp(lp_infeasible, options).status,
            MilpResult::SolveStatus::kLpRelaxationInfeasible);
  EXPECT_EQ(SolveMilp(int_infeasible, options).status,
            MilpResult::SolveStatus::kInfeasible);
}

TEST(InfeasibleStatusTest, StatusNamesAreDistinct) {
  EXPECT_STRNE(
      MilpStatusName(MilpResult::SolveStatus::kInfeasible),
      MilpStatusName(MilpResult::SolveStatus::kLpRelaxationInfeasible));
}

// --- Cached LP core --------------------------------------------------------

TEST(StandardFormTest, ScratchReuseMatchesOneShotSolves) {
  // Solve the same model under three different bound sets with one reused
  // scratch; results must match the one-shot SolveLpRelaxation exactly.
  Model model;
  int a = model.AddVariable("a", VarType::kContinuous, 0, 10);
  int b = model.AddVariable("b", VarType::kContinuous, -5, 5);
  model.AddRow("r1", {{a, 1.0}, {b, 1.0}}, RowSense::kLe, 8);
  model.AddRow("r2", {{a, 1.0}, {b, -2.0}}, RowSense::kGe, -4);
  model.SetObjective({{a, -1.0}, {b, -2.0}}, 0, ObjectiveSense::kMinimize);

  StandardForm form(model);
  LpScratch scratch;
  LpResult cached;
  const std::vector<std::pair<std::vector<double>, std::vector<double>>>
      bound_sets = {
          {{0, -5}, {10, 5}},
          {{2, 0}, {6, 0}},   // b fixed at 0
          {{0, -5}, {0, 5}},  // a fixed at 0
      };
  for (const auto& [lower, upper] : bound_sets) {
    SolveLpCached(form, {}, lower, upper, &scratch, &cached);
    LpResult fresh = SolveLpRelaxation(model, {}, &lower, &upper);
    ASSERT_EQ(cached.status, fresh.status);
    ASSERT_EQ(cached.status, LpResult::SolveStatus::kOptimal);
    EXPECT_EQ(cached.objective, fresh.objective);  // bit-identical pivots
    EXPECT_EQ(cached.iterations, fresh.iterations);
    ASSERT_EQ(cached.point.size(), fresh.point.size());
    for (size_t i = 0; i < cached.point.size(); ++i) {
      EXPECT_EQ(cached.point[i], fresh.point[i]);
    }
  }
}

TEST(StandardFormTest, InfeasibleBoundsShortCircuit) {
  Model model;
  model.AddVariable("x", VarType::kContinuous, 0, 10);
  model.SetObjective({{0, 1.0}}, 0, ObjectiveSense::kMinimize);
  StandardForm form(model);
  LpScratch scratch;
  LpResult result;
  SolveLpCached(form, {}, {7}, {3}, &scratch, &result);
  EXPECT_EQ(result.status, LpResult::SolveStatus::kInfeasible);
}

// --- Paper-instance regression --------------------------------------------

class PaperInstanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = ocr::CashBudgetFixture::PaperExample(/*with_error=*/true);
    ASSERT_TRUE(db.ok());
    cons::ConstraintSet constraints;
    Status parsed = cons::ParseConstraintProgram(
        db->Schema(), ocr::CashBudgetFixture::ConstraintProgram(),
        &constraints);
    ASSERT_TRUE(parsed.ok()) << parsed.ToString();
    auto translation = repair::TranslateToMilp(*db, constraints);
    ASSERT_TRUE(translation.ok());
    model_ = translation->model;
  }

  Model model_;
};

TEST_F(PaperInstanceTest, SerialSolveBeatsSeedIterationCount) {
  // The seed (pre-bounded-variable) solver explored 3 nodes / 282 LP
  // iterations on the Fig. 4 / Example 11 instance. Correctness is anchored
  // on the optimal objective (1 — exactly one cell repaired), and the
  // bounded-variable core with dual warm starts must use strictly fewer LP
  // iterations than the seed's explicit-upper-bound-row tableau did.
  obs::RunContext run;
  MilpOptions options;
  options.run = &run;
  options.objective_is_integral = true;
  options.search.num_threads = 1;
  MilpResult solved = SolveMilp(model_, options);
  ASSERT_EQ(solved.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(solved.objective, 1.0, kTol);
  const obs::MetricsSnapshot snap = run.metrics().Snapshot();
  const int64_t nodes = snap.Counter("milp.nodes");
  EXPECT_GE(nodes, 1);
  EXPECT_GT(snap.Counter("milp.lp_iterations"), 0);
  EXPECT_LT(snap.Counter("milp.lp_iterations"), 282);
  // Every non-root node LP must complete on the warm path here.
  EXPECT_EQ(snap.Counter("milp.lp_warm_solves"), nodes - 1);
  EXPECT_EQ(snap.Counter("milp.scheduler.thread.0.nodes"), nodes);
  EXPECT_EQ(snap.Counter("milp.scheduler.steals"), 0);
}

TEST_F(PaperInstanceTest, WarmAndColdAgreeOnObjective) {
  // Ablation invariance: disabling warm starts must not change the optimum
  // (only the work done to reach it).
  obs::RunContext warm_run, cold_run;
  MilpOptions warm, cold;
  warm.run = &warm_run;
  cold.run = &cold_run;
  warm.objective_is_integral = cold.objective_is_integral = true;
  cold.search.use_warm_start = false;
  MilpResult with_warm = SolveMilp(model_, warm);
  MilpResult with_cold = SolveMilp(model_, cold);
  ASSERT_EQ(with_warm.status, MilpResult::SolveStatus::kOptimal);
  ASSERT_EQ(with_cold.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(with_warm.objective, with_cold.objective, kTol);
  const obs::MetricsSnapshot warm_snap = warm_run.metrics().Snapshot();
  const obs::MetricsSnapshot cold_snap = cold_run.metrics().Snapshot();
  EXPECT_EQ(cold_snap.Counter("milp.lp_warm_solves"), 0);
  EXPECT_LE(warm_snap.Counter("milp.lp_iterations"),
            cold_snap.Counter("milp.lp_iterations"));
}

TEST_F(PaperInstanceTest, ThreadCountsAgreeOnObjective) {
  for (int threads : {1, 2, 8}) {
    obs::RunContext run;
    MilpOptions options;
    options.run = &run;
    options.objective_is_integral = true;
    options.search.num_threads = threads;
    MilpResult solved = SolveMilp(model_, options);
    ASSERT_EQ(solved.status, MilpResult::SolveStatus::kOptimal)
        << "threads=" << threads;
    EXPECT_NEAR(solved.objective, 1.0, kTol) << "threads=" << threads;
    // One attribution counter per worker (zeros included), summing to the
    // node total.
    const obs::MetricsSnapshot snap = run.metrics().Snapshot();
    int64_t total = 0;
    int observed_threads = 0;
    for (int t = 0;; ++t) {
      const auto it = snap.counters.find("milp.scheduler.thread." +
                                         std::to_string(t) + ".nodes");
      if (it == snap.counters.end()) break;
      ++observed_threads;
      total += it->second;
    }
    EXPECT_EQ(observed_threads, threads) << "threads=" << threads;
    EXPECT_EQ(total, snap.Counter("milp.nodes")) << "threads=" << threads;
  }
}

// --- Parallel/serial/exhaustive agreement (randomized property test) -------

class ParallelAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelAgreementTest, AllThreadCountsMatchExhaustive) {
  Rng rng(7100 + GetParam());
  // Random model: 6 binaries, 2 continuous, 4 random rows, random objective;
  // the same recipe as the serial SolverAgreementTest so coverage stays
  // comparable.
  Model model;
  std::vector<int> vars;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(
        model.AddVariable("b" + std::to_string(i), VarType::kBinary, 0, 1));
  }
  for (int i = 0; i < 2; ++i) {
    vars.push_back(model.AddVariable("x" + std::to_string(i),
                                     VarType::kContinuous, -5, 5));
  }
  for (int r = 0; r < 4; ++r) {
    std::vector<LinearTerm> terms;
    for (int v : vars) {
      if (rng.Bernoulli(0.6)) {
        terms.push_back({v, static_cast<double>(rng.UniformInt(-4, 4))});
      }
    }
    if (terms.empty()) continue;
    model.AddRow("r" + std::to_string(r), terms,
                 rng.Bernoulli(0.3) ? RowSense::kGe : RowSense::kLe,
                 static_cast<double>(rng.UniformInt(-6, 10)));
  }
  std::vector<LinearTerm> objective;
  for (int v : vars) {
    objective.push_back({v, static_cast<double>(rng.UniformInt(-5, 5))});
  }
  model.SetObjective(objective, 0, ObjectiveSense::kMinimize);

  MilpResult exhaustive = SolveByBinaryEnumeration(model);
  for (int threads : {1, 2, 8}) {
    MilpOptions options;
    options.search.num_threads = threads;
    MilpResult solved = SolveMilp(model, options);
    ASSERT_EQ(solved.status == MilpResult::SolveStatus::kOptimal,
              exhaustive.status == MilpResult::SolveStatus::kOptimal)
        << "threads=" << threads << " seed=" << GetParam();
    if (solved.status == MilpResult::SolveStatus::kOptimal) {
      EXPECT_NEAR(solved.objective, exhaustive.objective, 1e-5)
          << "threads=" << threads << " seed=" << GetParam();
      EXPECT_TRUE(IsFeasiblePoint(model, solved.point, 1e-5));
    } else {
      EXPECT_TRUE(IsInfeasibleStatus(solved.status));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, ParallelAgreementTest,
                         ::testing::Range(0, 25));

// --- Parallel solver corners ----------------------------------------------

TEST(ParallelSolverTest, NodeLimitReported) {
  Model model;
  std::vector<LinearTerm> row, obj;
  for (int i = 0; i < 12; ++i) {
    int v = model.AddVariable("b" + std::to_string(i), VarType::kBinary, 0, 1);
    row.push_back({v, static_cast<double>(2 * i + 3)});
    obj.push_back({v, 1.0});
  }
  model.AddRow("pack", row, RowSense::kEq, 41);
  model.SetObjective(obj, 0, ObjectiveSense::kMinimize);
  MilpOptions options;
  options.search.max_nodes = 1;
  options.search.rounding_heuristic = false;
  options.search.num_threads = 4;
  MilpResult result = SolveMilp(model, options);
  EXPECT_EQ(result.status, MilpResult::SolveStatus::kNodeLimit);
}

TEST(ParallelSolverTest, WarmStartSeedsIncumbent) {
  // max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d <= 14, binaries; optimum 21.
  Model model;
  int a = model.AddVariable("a", VarType::kBinary, 0, 1);
  int b = model.AddVariable("b", VarType::kBinary, 0, 1);
  int c = model.AddVariable("c", VarType::kBinary, 0, 1);
  int d = model.AddVariable("d", VarType::kBinary, 0, 1);
  model.AddRow("cap", {{a, 5.0}, {b, 7.0}, {c, 4.0}, {d, 3.0}}, RowSense::kLe,
               14);
  model.SetObjective({{a, 8.0}, {b, 11.0}, {c, 6.0}, {d, 4.0}}, 0,
                     ObjectiveSense::kMaximize);
  MilpOptions options;
  options.search.num_threads = 2;
  options.initial_point = {0, 1, 1, 1};  // the optimum itself
  MilpResult result = SolveMilp(model, options);
  ASSERT_EQ(result.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 21.0, kTol);
}

TEST(ParallelSolverTest, EngineProducesSameRepairCardinality) {
  // End-to-end: the paper example repaired with a 2-thread solver must give
  // the same card-1 repair as the serial engine.
  auto db = ocr::CashBudgetFixture::PaperExample(/*with_error=*/true);
  ASSERT_TRUE(db.ok());
  cons::ConstraintSet constraints;
  Status parsed = cons::ParseConstraintProgram(
      db->Schema(), ocr::CashBudgetFixture::ConstraintProgram(), &constraints);
  ASSERT_TRUE(parsed.ok());
  for (int threads : {1, 2}) {
    repair::RepairEngineOptions options;
    options.milp.search.num_threads = threads;
    repair::RepairEngine engine(options);
    auto outcome = engine.ComputeRepair(*db, constraints);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->repair.cardinality(), 1u) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace dart::milp
