// Tests for branch-and-bound warm starting: a feasible initial point seeds
// the incumbent (and an infeasible or ill-sized one is ignored), the engine
// builds correct hint points from repairs, and hints contradicted by new
// pins are dropped without affecting correctness.

#include <gtest/gtest.h>

#include "constraints/parser.h"
#include "milp/branch_and_bound.h"
#include "milp/presolve.h"
#include "ocr/cash_budget.h"
#include "repair/engine.h"
#include "util/random.h"

namespace dart::milp {
namespace {

Model KnapsackModel() {
  // max 8a + 11b + 6c, 5a + 7b + 4c <= 14 — optimum 17 at b=c=1... check:
  // b+c weight 11 <= 14, value 17; a+b = 12 <= 14 value 19! So optimum 19
  // at a=1,b=1 (weight 12). a+c: 9, value 14.
  Model model;
  int a = model.AddVariable("a", VarType::kBinary, 0, 1);
  int b = model.AddVariable("b", VarType::kBinary, 0, 1);
  int c = model.AddVariable("c", VarType::kBinary, 0, 1);
  model.AddRow("cap", {{a, 5.0}, {b, 7.0}, {c, 4.0}}, RowSense::kLe, 14);
  model.SetObjective({{a, 8.0}, {b, 11.0}, {c, 6.0}}, 0,
                     ObjectiveSense::kMaximize);
  return model;
}

TEST(WarmStartTest, FeasibleHintDoesNotChangeOptimum) {
  Model model = KnapsackModel();
  MilpOptions options;
  options.initial_point = {1.0, 0.0, 1.0};  // feasible, value 14
  MilpResult result = SolveMilp(model, options);
  ASSERT_EQ(result.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 19.0, 1e-6);
}

TEST(WarmStartTest, OptimalHintIsKept) {
  Model model = KnapsackModel();
  MilpOptions options;
  options.initial_point = {1.0, 1.0, 0.0};  // the optimum itself
  MilpResult result = SolveMilp(model, options);
  ASSERT_EQ(result.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 19.0, 1e-6);
  EXPECT_NEAR(result.point[0], 1.0, 1e-6);
  EXPECT_NEAR(result.point[1], 1.0, 1e-6);
}

TEST(WarmStartTest, InfeasibleOrIllSizedHintIgnored) {
  Model model = KnapsackModel();
  {
    MilpOptions options;
    options.initial_point = {1.0, 1.0, 1.0};  // weight 16 > 14: infeasible
    MilpResult result = SolveMilp(model, options);
    ASSERT_EQ(result.status, MilpResult::SolveStatus::kOptimal);
    EXPECT_NEAR(result.objective, 19.0, 1e-6);
  }
  {
    MilpOptions options;
    options.initial_point = {1.0};  // wrong size
    MilpResult result = SolveMilp(model, options);
    ASSERT_EQ(result.status, MilpResult::SolveStatus::kOptimal);
    EXPECT_NEAR(result.objective, 19.0, 1e-6);
  }
}

TEST(WarmStartTest, SurvivesPresolveProjection) {
  Model model = KnapsackModel();
  // Pin a = 1 via a singleton row so presolve eliminates it.
  model.AddRow("pin", {{0, 1.0}}, RowSense::kEq, 1);
  MilpOptions options;
  options.initial_point = {1.0, 1.0, 0.0};
  MilpResult result = SolveMilpWithPresolve(model, options);
  ASSERT_EQ(result.status, MilpResult::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 19.0, 1e-6);
  ASSERT_EQ(result.point.size(), 3u);  // lifted back to original space
  EXPECT_NEAR(result.point[0], 1.0, 1e-6);
}

TEST(WarmStartTest, EngineHintAcceleratesRepeatSolve) {
  auto db = ocr::CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(db.ok());
  cons::ConstraintSet constraints;
  ASSERT_TRUE(cons::ParseConstraintProgram(
                  db->Schema(), ocr::CashBudgetFixture::ConstraintProgram(),
                  &constraints)
                  .ok());
  obs::RunContext cold_run;
  repair::RepairEngineOptions cold_options;
  cold_options.run = &cold_run;
  repair::RepairEngine cold_engine(cold_options);
  auto cold = cold_engine.ComputeRepair(*db, constraints);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  // Re-solve with the previous repair as hint: identical result, and the
  // warm incumbent lets bound-pruning close the root immediately (node
  // count no larger than the cold run, per the runs' registries).
  obs::RunContext warm_run;
  repair::RepairEngineOptions warm_options;
  warm_options.run = &warm_run;
  repair::RepairEngine warm_engine(warm_options);
  auto warm = warm_engine.ComputeRepair(*db, constraints, {}, &cold->repair);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->repair.cardinality(), cold->repair.cardinality());
  EXPECT_LE(warm_run.metrics().Snapshot().Counter("milp.nodes"),
            cold_run.metrics().Snapshot().Counter("milp.nodes"));
}

// --- Sparse vs dense kernel warm-start parity -------------------------------

class KernelWarmStartParityTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelWarmStartParityTest, SparseWarmFractionIsNoWorseThanDense) {
  // Random pure-binary models (the WarmStartAgreementTest recipe, different
  // seed stream): branch-and-bound with warm starts under the sparse kernel
  // must find the same optimum as under the dense oracle, and its warm-start
  // fraction must be no worse — every non-root node re-solves on the warm
  // path; a kernel that silently falls back to cold solves fails here.
  Rng rng(81000 + GetParam());
  Model model;
  std::vector<int> vars;
  for (int i = 0; i < 8; ++i) {
    vars.push_back(
        model.AddVariable("b" + std::to_string(i), VarType::kBinary, 0, 1));
  }
  for (int r = 0; r < 5; ++r) {
    std::vector<LinearTerm> terms;
    for (int v : vars) {
      if (rng.Bernoulli(0.6)) {
        terms.push_back({v, static_cast<double>(rng.UniformInt(-4, 4))});
      }
    }
    if (terms.empty()) continue;
    RowSense sense = rng.Bernoulli(0.3)
                         ? RowSense::kGe
                         : (rng.Bernoulli(0.15) ? RowSense::kEq
                                                : RowSense::kLe);
    model.AddRow("r" + std::to_string(r), terms, sense,
                 static_cast<double>(rng.UniformInt(-6, 10)));
  }
  std::vector<LinearTerm> objective;
  for (int v : vars) {
    objective.push_back({v, static_cast<double>(rng.UniformInt(-5, 5))});
  }
  model.SetObjective(objective, 0, ObjectiveSense::kMinimize);

  double warm_frac[2] = {1.0, 1.0};
  bool optimal[2] = {false, false};
  double value[2] = {0.0, 0.0};
  int k = 0;
  for (const LpKernel kernel : {LpKernel::kSparse, LpKernel::kDense}) {
    obs::RunContext run;
    MilpOptions options;
    options.run = &run;
    options.lp.kernel = kernel;
    options.objective_is_integral = true;
    MilpResult solved = SolveMilp(model, options);
    optimal[k] = solved.status == MilpResult::SolveStatus::kOptimal;
    value[k] = solved.objective;
    const auto snapshot = run.metrics().Snapshot();
    const auto nodes = snapshot.Counter("milp.nodes");
    const auto warm = snapshot.Counter("milp.lp_warm_solves");
    if (nodes > 1) {
      EXPECT_EQ(warm, nodes - 1)
          << LpKernelName(kernel) << " seed=" << GetParam();
      warm_frac[k] = static_cast<double>(warm) /
                     static_cast<double>(nodes - 1);
    }
    ++k;
  }
  ASSERT_EQ(optimal[0], optimal[1]) << "seed=" << GetParam();
  if (optimal[0]) {
    EXPECT_NEAR(value[0], value[1], 1e-6);
  }
  EXPECT_GE(warm_frac[0] + 1e-12, warm_frac[1]) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomModels, KernelWarmStartParityTest,
                         ::testing::Range(0, 30));

TEST(WarmStartTest, KernelsAgreeOnPaperInstanceRepair) {
  // End-to-end engine parity on the paper's cash-budget instance: identical
  // repair cardinality and a sparse warm fraction no worse than dense.
  auto db = ocr::CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(db.ok());
  cons::ConstraintSet constraints;
  ASSERT_TRUE(cons::ParseConstraintProgram(
                  db->Schema(), ocr::CashBudgetFixture::ConstraintProgram(),
                  &constraints)
                  .ok());
  size_t cardinality[2] = {0, 0};
  double warm_frac[2] = {1.0, 1.0};
  int k = 0;
  for (const LpKernel kernel : {LpKernel::kSparse, LpKernel::kDense}) {
    obs::RunContext run;
    repair::RepairEngineOptions options;
    options.run = &run;
    options.milp.lp.kernel = kernel;
    repair::RepairEngine engine(options);
    auto outcome = engine.ComputeRepair(*db, constraints);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    cardinality[k] = outcome->repair.cardinality();
    const auto snapshot = run.metrics().Snapshot();
    const auto nodes = snapshot.Counter("milp.nodes");
    const auto solves = snapshot.Counter("milp.solves");
    const auto warm = snapshot.Counter("milp.lp_warm_solves");
    // Warm-eligible nodes: every node except each component solve's root.
    if (nodes > solves) {
      warm_frac[k] = static_cast<double>(warm) /
                     static_cast<double>(nodes - solves);
    }
    ++k;
  }
  EXPECT_EQ(cardinality[0], cardinality[1]);
  EXPECT_GE(warm_frac[0] + 1e-12, warm_frac[1]);
}

TEST(WarmStartTest, HintContradictedByPinIsDropped) {
  auto db = ocr::CashBudgetFixture::PaperExample(true);
  ASSERT_TRUE(db.ok());
  cons::ConstraintSet constraints;
  ASSERT_TRUE(cons::ParseConstraintProgram(
                  db->Schema(), ocr::CashBudgetFixture::ConstraintProgram(),
                  &constraints)
                  .ok());
  repair::RepairEngine engine;
  auto first = engine.ComputeRepair(*db, constraints);
  ASSERT_TRUE(first.ok());
  // Pin the suggested cell to the acquired value (a rejection): the hint
  // violates the pin, must be discarded, and the solve still succeeds with
  // an alternative repair.
  std::vector<repair::FixedValue> pins = {{{"CashBudget", 3, 4}, 250.0}};
  auto second =
      engine.ComputeRepair(*db, constraints, pins, &first->repair);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GE(second->repair.cardinality(), 2u);
}

}  // namespace
}  // namespace dart::milp
