# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/constraints_test[1]_include.cmake")
include("/root/repo/build/tests/steady_test[1]_include.cmake")
include("/root/repo/build/tests/milp_test[1]_include.cmake")
include("/root/repo/build/tests/translator_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/textrepair_test[1]_include.cmake")
include("/root/repo/build/tests/wrapper_test[1]_include.cmake")
include("/root/repo/build/tests/dbgen_test[1]_include.cmake")
include("/root/repo/build/tests/ocr_test[1]_include.cmake")
include("/root/repo/build/tests/validation_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/cqa_test[1]_include.cmake")
include("/root/repo/build/tests/weighted_repair_test[1]_include.cmake")
include("/root/repo/build/tests/acquire_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_io_test[1]_include.cmake")
include("/root/repo/build/tests/presolve_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/real_domain_test[1]_include.cmake")
include("/root/repo/build/tests/cross_relation_test[1]_include.cmake")
include("/root/repo/build/tests/display_test[1]_include.cmake")
include("/root/repo/build/tests/warmstart_test[1]_include.cmake")
include("/root/repo/build/tests/expense_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_milp_test[1]_include.cmake")
