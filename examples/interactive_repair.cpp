// The Validation Interface protocol of Sec. 6.3, step by step.
//
// This example scripts the exact dialogue the paper describes: DART proposes
// a repair; the operator rejects an update and supplies the actual source
// value; the rejection becomes a new constraint (a value pin); DART
// re-solves and proposes a different repair; and so on until acceptance.
// It also shows the display-ordering heuristic (most-constrained cells
// first).
//
//   $ ./interactive_repair

#include <cstdio>

#include "core/dart.h"

using namespace dart;

namespace {

/// Renders a proposal exactly as the Validation Interface would show it.
void PrintProposal(int round, const rel::Database& db,
                   const repair::RepairOutcome& outcome, int64_t nodes) {
  std::printf("--- Proposal %d (%zu update%s, %lld B&B nodes) ---\n", round,
              outcome.repair.cardinality(),
              outcome.repair.cardinality() == 1 ? "" : "s",
              static_cast<long long>(nodes));
  auto rendered = validation::RenderRepairForOperator(db, outcome.repair);
  if (rendered.ok()) {
    std::printf("%s", rendered->c_str());
  }
}

}  // namespace

int main() {
  // Acquired data: the Fig. 3 instance, but pretend the source document
  // *really* contains 250 for total cash receipts 2003 — i.e. the document
  // itself carries different receivables (150) and net inflow (90) and
  // ending balance (110). DART cannot know that; the operator can.
  auto acquired = ocr::CashBudgetFixture::PaperExample(true);
  if (!acquired.ok()) {
    std::fprintf(stderr, "%s\n", acquired.status().ToString().c_str());
    return 1;
  }
  cons::ConstraintSet constraints;
  Status parsed = cons::ParseConstraintProgram(
      acquired->Schema(), ocr::CashBudgetFixture::ConstraintProgram(),
      &constraints);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }
  // Solver effort per round is read back from the obs registry: snapshot
  // before each solve, diff after.
  obs::RunContext run;
  repair::RepairEngineOptions engine_options;
  engine_options.run = &run;
  repair::RepairEngine engine(engine_options);
  auto nodes_since = [&run](const obs::MetricsSnapshot& base) {
    return run.metrics().Snapshot().DeltaSince(base).Counter("milp.nodes");
  };

  // Round 1: no operator knowledge yet.
  obs::MetricsSnapshot base = run.metrics().Snapshot();
  auto first = engine.ComputeRepair(*acquired, constraints);
  if (!first.ok()) {
    std::fprintf(stderr, "%s\n", first.status().ToString().c_str());
    return 1;
  }
  PrintProposal(1, *acquired, *first, nodes_since(base));
  std::printf(
      "\nOperator: \"No — the document really says 250 there.\"\n"
      "The rejection pins CashBudget[3].Value to 250 and re-solves.\n\n");

  // Round 2: the pin forces an alternative explanation.
  std::vector<repair::FixedValue> pins = {{{"CashBudget", 3, 4}, 250.0}};
  base = run.metrics().Snapshot();
  auto second = engine.ComputeRepair(*acquired, constraints, pins);
  if (!second.ok()) {
    std::fprintf(stderr, "%s\n", second.status().ToString().c_str());
    return 1;
  }
  PrintProposal(2, *acquired, *second, nodes_since(base));
  std::printf(
      "\nNote the ordering: updates whose cells occur in more ground\n"
      "constraints are shown first (Sec. 6.3's heuristic), so an early\n"
      "re-start invalidates as many wrong guesses as possible.\n\n");

  // Suppose the operator now accepts every suggested value (they match the
  // document). Accepting pins each cell to the suggested value; the next
  // solve returns the same repair, which is final.
  for (const repair::AtomicUpdate& update : second->repair.updates()) {
    pins.push_back({update.cell, update.new_value.AsReal()});
  }
  base = run.metrics().Snapshot();
  auto final_outcome = engine.ComputeRepair(*acquired, constraints, pins);
  if (!final_outcome.ok()) {
    std::fprintf(stderr, "%s\n", final_outcome.status().ToString().c_str());
    return 1;
  }
  PrintProposal(3, *acquired, *final_outcome, nodes_since(base));
  auto repaired = final_outcome->repair.Applied(*acquired);
  if (!repaired.ok()) {
    std::fprintf(stderr, "%s\n", repaired.status().ToString().c_str());
    return 1;
  }
  cons::ConsistencyChecker checker(&constraints);
  auto consistent = checker.IsConsistent(*repaired);
  std::printf("\nAccepted. Final database consistent: %s\n",
              consistent.ok() && *consistent ? "yes" : "NO");
  std::printf("%s\n", repaired->FindRelation("CashBudget")->ToString().c_str());
  return 0;
}
