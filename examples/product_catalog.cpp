// Product-catalog acquisition — the paper's "web sites publishing product
// catalogs" scenario. Demonstrates that DART's metadata-driven design ports
// to a second domain without code changes: a different relation scheme, a
// two-level totals hierarchy (item → category total → grand total), its own
// row pattern, and its own constraint program.
//
//   $ ./product_catalog [seed]

#include <cstdio>
#include <cstdlib>

#include "core/dart.h"

using namespace dart;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  Rng rng(seed);

  ocr::CatalogOptions options;
  options.num_categories = 4;
  options.items_per_category = 4;
  auto truth = ocr::CatalogFixture::Random(options, &rng);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }
  std::printf("Catalog ground truth:\n%s\n",
              truth->FindRelation("Catalog")->ToString().c_str());

  core::AcquisitionMetadata metadata;
  auto catalog = ocr::CatalogFixture::BuildCatalog(*truth);
  auto mapping = ocr::CatalogFixture::BuildMapping(*truth);
  if (!catalog.ok() || !mapping.ok()) {
    std::fprintf(stderr, "metadata construction failed\n");
    return 1;
  }
  metadata.catalog = std::move(catalog).value();
  metadata.patterns = ocr::CatalogFixture::BuildPatterns();
  metadata.mappings = {std::move(mapping).value()};
  metadata.constraint_program = ocr::CatalogFixture::ConstraintProgram();
  auto pipeline = core::DartPipeline::Create(std::move(metadata));
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }

  // Corrupt a couple of amounts and one item name, then publish as HTML.
  rel::Database scanned = truth->Clone();
  auto injected = ocr::InjectMeasureErrors(&scanned, 2, &rng);
  if (!injected.ok()) {
    std::fprintf(stderr, "%s\n", injected.status().ToString().c_str());
    return 1;
  }
  std::printf("Injected acquisition errors:\n");
  for (const ocr::InjectedError& error : *injected) {
    std::printf("  %s: %s became %s\n", error.cell.ToString().c_str(),
                error.true_value.ToString().c_str(),
                error.corrupted_value.ToString().c_str());
  }
  ocr::NoiseModel string_noise({0.0, 0.2, 1, 1}, &rng);
  const std::string html =
      ocr::CatalogFixture::RenderHtml(scanned, &string_noise);
  std::printf("(plus %zu corrupted lexical items in the rendered HTML)\n\n",
              string_noise.strings_corrupted());

  auto outcome = pipeline->Submit(core::ProcessRequest::FromHtml(html));
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("Extraction repaired %zu lexical cells via msi().\n",
              outcome->acquisition.extraction.repaired_cells);
  std::printf("Violated ground constraints after acquisition: %zu\n",
              outcome->violations.size());
  for (const cons::Violation& violation : outcome->violations) {
    std::printf("  %s\n", violation.ToString().c_str());
  }
  std::printf("\nSuggested card-minimal repair (%zu updates):\n%s\n",
              outcome->repair.repair.cardinality(),
              outcome->repair.repair.ToString().c_str());

  auto differences = outcome->repaired.CountDifferences(*truth);
  std::printf("Repaired catalog differs from ground truth in %zu cells.\n",
              differences.ok() ? *differences : size_t{999});
  std::printf(
      "(A nonzero residual is possible without operator supervision: the\n"
      " card-minimal semantics picks *a* minimum-change explanation, which\n"
      " the validation loop would then confirm or refine — see the\n"
      " balance_sheets and interactive_repair examples.)\n");
  return 0;
}
