// The acquisition module on scanner output (Sec. 6.1): "paper documents are
// first digitized and processed by means of an OCR tool ... whose output is
// then processed by the converter."
//
// This example takes a cash budget through the *positional* path:
//   1. render the document as OCR output — text boxes with coordinates,
//      serialized in the .pos format (shown truncated);
//   2. geometrically reconstruct the tables (column clustering, row
//      banding, span detection) and convert to HTML;
//   3. run the usual DART pipeline on the reconstruction.
//
//   $ ./scanned_document [seed]

#include <cstdio>
#include <cstdlib>

#include "core/dart.h"

using namespace dart;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  Rng rng(seed);

  ocr::CashBudgetOptions options;
  options.num_years = 2;
  auto truth = ocr::CashBudgetFixture::Random(options, &rng);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }

  // --- 1. "Scan" the document: OCR noise applies while rendering boxes.
  ocr::NoiseModel noise({0.10, 0.10, 1, 1}, &rng);
  acquire::PositionalDocument scan =
      ocr::CashBudgetFixture::RenderPositional(*truth, &noise);
  const std::string pos_text = acquire::WritePositional(scan);
  std::printf("OCR output (.pos, %zu boxes — first lines):\n", scan.TotalBoxes());
  size_t shown = 0, pos = 0;
  while (shown < 8 && pos < pos_text.size()) {
    size_t end = pos_text.find('\n', pos);
    std::printf("  %s\n", pos_text.substr(pos, end - pos).c_str());
    pos = end + 1;
    ++shown;
  }
  std::printf("  ...\n\n");

  // --- 2. Round-trip through the serialized form (as a real deployment
  // would: the OCR tool writes the file, DART reads it back).
  auto reparsed = acquire::ReadPositional(pos_text);
  if (!reparsed.ok()) {
    std::fprintf(stderr, "%s\n", reparsed.status().ToString().c_str());
    return 1;
  }
  auto html = acquire::ConvertToHtml(*reparsed);
  if (!html.ok()) {
    std::fprintf(stderr, "%s\n", html.status().ToString().c_str());
    return 1;
  }
  std::printf("Layout analysis reconstructed the tables; HTML is %zu bytes.\n\n",
              html->size());

  // --- 3. The ordinary pipeline, fed from the scan.
  core::AcquisitionMetadata metadata;
  auto catalog = ocr::CashBudgetFixture::BuildCatalog(*truth);
  auto mapping = ocr::CashBudgetFixture::BuildMapping(*truth);
  if (!catalog.ok() || !mapping.ok()) {
    std::fprintf(stderr, "metadata construction failed\n");
    return 1;
  }
  metadata.catalog = std::move(catalog).value();
  metadata.patterns = ocr::CashBudgetFixture::BuildPatterns();
  metadata.mappings = {std::move(mapping).value()};
  metadata.constraint_program = ocr::CashBudgetFixture::ConstraintProgram();
  auto pipeline = core::DartPipeline::Create(std::move(metadata));
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  auto outcome =
      pipeline->Submit(core::ProcessRequest::FromPositional(*reparsed));
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("Extraction: %zu/%zu rows matched, %zu msi string repairs.\n",
              outcome->acquisition.extraction.matched_rows,
              outcome->acquisition.extraction.rows,
              outcome->acquisition.extraction.repaired_cells);
  std::printf("Violated ground constraints: %zu\n", outcome->violations.size());
  std::printf("Suggested card-minimal repair (%zu updates):\n%s",
              outcome->repair.repair.cardinality(),
              outcome->repair.repair.ToString().c_str());

  validation::SimulatedOperator op(&*truth);
  auto session = pipeline->ProcessSupervised(
      acquire::ConvertToHtml(*reparsed).value(), op);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  auto recovered = session->repaired.CountDifferences(*truth);
  std::printf(
      "\nSupervised session: %zu iterations, %zu values examined; final "
      "database differs from the paper document in %zu cells.\n",
      session->iterations, session->examined_updates,
      recovered.ok() ? *recovered : size_t{999});
  return 0;
}
