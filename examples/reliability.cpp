// Reliability analysis (the CQA extension): which acquired values can be
// trusted *before* any human looks at the document?
//
// Under the card-minimal semantics, a value is reliable iff every
// minimum-change repair agrees on it. DART computes, per cell, the interval
// of values across all card-minimal repairs; point intervals are reliable
// answers, wide intervals are exactly where operator attention is needed.
//
//   $ ./reliability

#include <cstdio>

#include "core/dart.h"
#include "repair/cqa.h"

using namespace dart;

namespace {

void Report(const rel::Database& db, const cons::ConstraintSet& constraints,
            const char* title) {
  std::printf("%s\n", title);
  auto result = repair::ComputeConsistentIntervals(db, constraints);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  minimum repair cardinality: %zu  (%lld MILP solves)\n",
              result->min_repair_cardinality,
              static_cast<long long>(result->milp_solves));
  TablePrinter table({"cell", "acquired", "interval", "verdict"});
  const rel::Relation* relation = db.FindRelation("CashBudget");
  for (const repair::CellInterval& interval : result->intervals) {
    if (interval.reliable() && !interval.touched()) continue;  // boring rows
    const rel::Tuple& tuple = relation->row(interval.cell.row);
    const std::string label = tuple[0].ToString() + "/" +
                              tuple[2].AsString();
    std::string range = interval.reliable()
                            ? FormatDouble(interval.min_value)
                            : "[" + FormatDouble(interval.min_value) + ", " +
                                  FormatDouble(interval.max_value) + "]";
    const char* verdict = interval.reliable()
                              ? (interval.touched() ? "reliable (corrected)"
                                                    : "reliable")
                              : "NEEDS OPERATOR";
    table.AddRow({label, FormatDouble(interval.current_value), range,
                  verdict});
  }
  if (table.row_count() == 0) {
    std::printf("  every value is reliable as acquired.\n\n");
  } else {
    table.Print();
    std::printf("\n");
  }
}

}  // namespace

int main() {
  auto db = ocr::CashBudgetFixture::PaperExample(true);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  cons::ConstraintSet constraints;
  Status parsed = cons::ParseConstraintProgram(
      db->Schema(), ocr::CashBudgetFixture::ConstraintProgram(), &constraints);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }

  // Case 1: the running example — the paper notes its card-minimal repair
  // is unique, so even the corrected cell is reliable.
  Report(*db, constraints,
         "Case 1: running example (unique card-minimal repair)");

  // Case 2: compensating corruption — cash sales and the receipts total
  // both shifted by +50, so two distinct minimum-change explanations exist;
  // DART can say precisely which four cells are in doubt.
  rel::Database ambiguous = db->Clone();
  DART_CHECK(ambiguous.UpdateCell({"CashBudget", 3, 4}, rel::Value(270)).ok());
  DART_CHECK(ambiguous.UpdateCell({"CashBudget", 1, 4}, rel::Value(150)).ok());
  Report(ambiguous, constraints,
         "Case 2: compensating errors (ambiguous optimum)");

  // Consistent answers to aggregate queries on the ambiguous instance: a
  // balance-analysis tool asking for figures before any human validation
  // gets certain values where possible and honest intervals elsewhere.
  std::printf("Aggregate-query answers on the ambiguous instance:\n");
  struct Query {
    const char* label;
    const char* function;
    std::vector<rel::Value> params;
  };
  const Query queries[] = {
      {"total cash receipts 2003", "chi2",
       {rel::Value(2003), rel::Value("total cash receipts")}},
      {"cash sales 2003", "chi2",
       {rel::Value(2003), rel::Value("cash sales")}},
      {"sum of 2004 details (Receipts)", "chi1",
       {rel::Value("Receipts"), rel::Value(2004), rel::Value("det")}},
  };
  for (const Query& query : queries) {
    auto answer = repair::ConsistentAggregateAnswer(
        ambiguous, constraints, query.function, query.params);
    if (!answer.ok()) {
      std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
      continue;
    }
    if (answer->certain()) {
      std::printf("  %-32s = %s (certain)\n", query.label,
                  FormatDouble(answer->min_value).c_str());
    } else {
      std::printf("  %-32s in [%s, %s] (acquired: %s)\n", query.label,
                  FormatDouble(answer->min_value).c_str(),
                  FormatDouble(answer->max_value).c_str(),
                  FormatDouble(answer->value_on_acquired).c_str());
    }
  }
  return 0;
}
