// Quickstart: the paper's running example in ~60 lines of client code.
//
// Builds the acquired CashBudget instance of Fig. 3 (with the OCR error
// 220 → 250), declares the aggregate constraints of Examples 3/4 in the
// constraint DSL, detects the violations, and computes the card-minimal
// repair of Example 6.
//
//   $ ./quickstart

#include <cstdio>

#include "core/dart.h"

int main() {
  using namespace dart;

  // --- 1. The acquired database instance (Fig. 3). In a real deployment
  // this comes out of the acquisition & extraction module; here we use the
  // bundled fixture.
  auto acquired = ocr::CashBudgetFixture::PaperExample(
      /*with_acquisition_error=*/true);
  if (!acquired.ok()) {
    std::fprintf(stderr, "%s\n", acquired.status().ToString().c_str());
    return 1;
  }
  std::printf("Acquired database (note total cash receipts 2003 = 250):\n%s\n",
              acquired->FindRelation("CashBudget")->ToString().c_str());

  // --- 2. The steady aggregate constraints, written in the DSL.
  cons::ConstraintSet constraints;
  Status parsed = cons::ParseConstraintProgram(
      acquired->Schema(), ocr::CashBudgetFixture::ConstraintProgram(),
      &constraints);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }
  std::printf("Constraints:\n%s\n", constraints.ToString().c_str());

  // --- 3. Detect inconsistencies.
  cons::ConsistencyChecker checker(&constraints);
  auto violations = checker.Check(*acquired);
  if (!violations.ok()) {
    std::fprintf(stderr, "%s\n", violations.status().ToString().c_str());
    return 1;
  }
  std::printf("Detected %zu violated ground constraints:\n",
              violations->size());
  for (const cons::Violation& violation : *violations) {
    std::printf("  %s\n", violation.ToString().c_str());
  }

  // --- 4. Compute the card-minimal repair (Sec. 5: translation to the MILP
  // instance S*(AC) + branch-and-bound).
  obs::RunContext run;
  repair::RepairEngineOptions engine_options;
  engine_options.run = &run;
  repair::RepairEngine engine(engine_options);
  auto outcome = engine.ComputeRepair(*acquired, constraints);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("\nCard-minimal repair (%zu update%s):\n%s",
              outcome->repair.cardinality(),
              outcome->repair.cardinality() == 1 ? "" : "s",
              outcome->repair.ToString().c_str());
  std::printf(
      "\nMILP stats: N=%zu cells, %zu ground rows, %lld B&B nodes, "
      "practical M=%g (theoretical M ~ 10^%.0f)\n",
      outcome->stats.num_cells, outcome->stats.num_ground_rows,
      static_cast<long long>(
          run.metrics().Snapshot().Counter("milp.nodes")),
      outcome->stats.practical_m, outcome->stats.theoretical_m_log10);

  // --- 5. Apply and re-check.
  auto repaired = outcome->repair.Applied(*acquired);
  if (!repaired.ok()) {
    std::fprintf(stderr, "%s\n", repaired.status().ToString().c_str());
    return 1;
  }
  auto consistent = checker.IsConsistent(*repaired);
  std::printf("Repaired database consistent: %s\n",
              consistent.ok() && *consistent ? "yes" : "NO");
  return 0;
}
