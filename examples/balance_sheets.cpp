// Balance-sheet acquisition end to end (the paper's motivating scenario):
//
//   1. a multi-year cash-budget *paper document* is simulated: rendered to
//      HTML through an OCR noise model that misreads digits and letters;
//   2. the acquisition & extraction module wraps the tables (row patterns,
//      msi string repair, multi-row Year propagation) and generates the
//      database instance;
//   3. the repairing module detects violations and suggests a card-minimal
//      repair;
//   4. the supervised validation loop runs against a simulated operator
//      until a repair is accepted, and we report how much human effort the
//      session needed compared to re-checking every value by hand.
//
//   $ ./balance_sheets [seed]

#include <cstdio>
#include <cstdlib>

#include "core/dart.h"

using namespace dart;

namespace {

int Run(uint64_t seed) {
  Rng rng(seed);

  // --- The source document (ground truth, consistent by construction).
  ocr::CashBudgetOptions doc_options;
  doc_options.start_year = 2001;
  doc_options.num_years = 4;
  doc_options.receipt_details = 3;
  doc_options.disbursement_details = 3;
  auto truth = ocr::CashBudgetFixture::Random(doc_options, &rng);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }
  std::printf("Source document data (%zu rows, consistent):\n%s\n",
              truth->FindRelation("CashBudget")->size(),
              truth->FindRelation("CashBudget")->ToString().c_str());

  // --- Scan + OCR: digits and lexical items get misread.
  ocr::NoiseModel noise({/*number_error_prob=*/0.10,
                         /*string_error_prob=*/0.15,
                         /*max_digit_errors=*/1, /*max_char_errors=*/2},
                        &rng);
  const std::string html = ocr::CashBudgetFixture::RenderHtml(*truth, &noise);
  std::printf("OCR simulation corrupted %zu numbers and %zu strings.\n\n",
              noise.numbers_corrupted(), noise.strings_corrupted());

  // --- Assemble the DART pipeline from the acquisition metadata.
  core::AcquisitionMetadata metadata;
  auto catalog = ocr::CashBudgetFixture::BuildCatalog(*truth);
  auto mapping = ocr::CashBudgetFixture::BuildMapping(*truth);
  if (!catalog.ok() || !mapping.ok()) {
    std::fprintf(stderr, "metadata construction failed\n");
    return 1;
  }
  metadata.catalog = std::move(catalog).value();
  metadata.patterns = ocr::CashBudgetFixture::BuildPatterns();
  metadata.mappings = {std::move(mapping).value()};
  metadata.constraint_program = ocr::CashBudgetFixture::ConstraintProgram();
  auto pipeline = core::DartPipeline::Create(std::move(metadata));
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }

  // --- Module 1: acquisition & extraction.
  auto acquisition = pipeline->Acquire(html);
  if (!acquisition.ok()) {
    std::fprintf(stderr, "%s\n", acquisition.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Extraction: %zu tables, %zu rows matched, %zu lexical cells repaired "
      "by msi(), %zu rows skipped.\n",
      acquisition->extraction.tables, acquisition->extraction.matched_rows,
      acquisition->extraction.repaired_cells, acquisition->skipped_rows);
  auto residual = truth->CountDifferences(acquisition->database);
  std::printf("Numeric acquisition errors surviving extraction: %zu\n\n",
              residual.ok() ? *residual : size_t{0});

  // --- Module 2: one unsupervised repair pass, for illustration.
  auto unsupervised = pipeline->Repair(acquisition->database);
  if (unsupervised.ok()) {
    std::printf("Suggested card-minimal repair (%zu updates):\n%s\n",
                unsupervised->repair.cardinality(),
                unsupervised->repair.ToString().c_str());
  } else {
    std::printf("Unsupervised repair failed: %s\n",
                unsupervised.status().ToString().c_str());
  }

  // --- The supervised loop (Sec. 6.3) against a simulated operator.
  validation::SimulatedOperator op(&*truth);
  auto session = pipeline->ProcessSupervised(html, op);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  const size_t total_cells = truth->MeasureCells().size();
  auto recovered = session->repaired.CountDifferences(*truth);
  std::printf(
      "Supervised session: %zu iterations, %zu values examined by the "
      "operator (%zu accepted, %zu rejected).\n",
      session->iterations, session->examined_updates,
      session->accepted_updates, session->rejected_updates);
  std::printf(
      "Human effort: %zu/%zu values checked (%.0f%% saved vs full manual "
      "verification).\n",
      session->examined_updates, total_cells,
      100.0 * (1.0 - static_cast<double>(session->examined_updates) /
                         static_cast<double>(total_cells)));
  std::printf("Recovered database differs from source in %zu cells.\n",
              recovered.ok() ? *recovered : size_t{999});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  return Run(seed);
}
